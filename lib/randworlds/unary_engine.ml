(** The exact unary engine: [Pr_N^τ̄] by multinomial aggregation over
    atom-count profiles, then the double limit along an (N, τ̄)
    schedule.

    Exact at each (N, τ̄) like the enumeration engine, but reaching
    domain sizes in the tens-to-hundreds, which makes the [N → ∞]
    trend actually visible. Fragment: unary predicates + constants,
    no equality. *)

open Rw_logic
open Rw_unary
module Trace = Rw_trace.Trace

let default_sizes = [ 20; 40; 60 ]

let unary_preds_of f =
  let preds, _ = Syntax.symbols f in
  List.filter_map (fun (p, a) -> if a = 1 then Some p else None) preds

(* Does the KB state any conditional proportion? Their granularity is
   governed by the (unknown, ≤ N) reference-class size rather than N,
   so they need a stricter tolerance-resolution guard. *)
let rec formula_has_cond f =
  match f with
  | Syntax.True | Syntax.False | Syntax.Pred _ | Syntax.Eq _ -> false
  | Syntax.Not g | Syntax.Forall (_, g) | Syntax.Exists (_, g) ->
    formula_has_cond g
  | Syntax.And (g, h)
  | Syntax.Or (g, h)
  | Syntax.Implies (g, h)
  | Syntax.Iff (g, h) -> formula_has_cond g || formula_has_cond h
  | Syntax.Compare (p, _, q) -> prop_has_cond p || prop_has_cond q

and prop_has_cond = function
  | Syntax.Num _ -> false
  | Syntax.Prop (g, _) -> formula_has_cond g
  | Syntax.Cond _ -> true
  | Syntax.Add (p, q) | Syntax.Mul (p, q) -> prop_has_cond p || prop_has_cond q

(** [pr_n ~kb ~query ~n ~tol] — exact finite-[N] degree of belief. *)
let pr_n ~kb ~query ~n ~tol =
  let parts = Analysis.analyze ~extra_preds:(unary_preds_of query) kb in
  Profile.pr_n parts ~query ~n ~tol

(** [series ~kb ~query ~ns ~tol] — [Pr_N] along domain sizes. *)
let series ~kb ~query ~ns ~tol =
  let parts = Analysis.analyze ~extra_preds:(unary_preds_of query) kb in
  List.filter_map
    (fun n ->
      match Profile.pr_n parts ~query ~n ~tol with
      | Some v -> Some (n, v)
      | None -> None)
    ns

(** [estimate ?ns ?tols ?compiled ~kb query] — the double limit over a
    grid, with Aitken extrapolation of the inner [N→∞] limit at each
    tolerance. [compiled] substitutes the artifact's precomputed
    stat-satisfying profile tables for the full composition sweep at
    each (N, τ̄); results are bit-identical with or without it.

    @raise Profile.Unsupported outside the unary fragment. *)
let estimate ?(ns = default_sizes) ?tols ?compiled ?trace ~kb query =
  Trace.span trace "unary" @@ fun () ->
  let emit tag fields =
    match trace with None -> () | Some tr -> Trace.fact tr tag fields
  in
  let declined why =
    emit "note" [ ("declined", Trace.S why) ];
    Answer.make ~engine:"unary" (Answer.Not_applicable why)
  in
  let parts = Analysis.analyze ~extra_preds:(unary_preds_of query) kb in
  if not (Analysis.fully_supported parts) then
    declined "KB outside the unary fragment"
  else begin
    let tols =
      match tols with
      | Some ts -> ts
      | None -> Tolerance.schedule ~steps:3 (Tolerance.uniform 0.1)
    in
    (* Keep the computation feasible: shrink N list if the profile
       space is too large. *)
    let ns =
      List.filter (fun n -> Profile.cost_estimate parts ~n < 5e6) ns
    in
    if ns = [] then declined "atom space too large for exact counting"
    else begin
      (* A tolerance finer than the size grid resolves is meaningless:
         once the width-2τ window drops below the 1/N spacing of
         representable proportions, only vacuous-denominator worlds
         satisfy the statistic and Pr_N degenerates to granularity
         noise. Conditional proportions are spaced by the reference
         class's size — unknown, but at most N — so they get twice the
         threshold. Keep the tolerance steps the largest size can
         resolve (a statistic-free KB has no tolerance indices and
         keeps them all — its Pr_N does not depend on τ̄ anyway). *)
      let max_n = List.fold_left max 1 ns in
      let tau_floor =
        if formula_has_cond kb then 1.0 /. float_of_int max_n
        else 1.0 /. (2.0 *. float_of_int max_n)
      in
      let resolvable tol =
        List.for_all
          (fun i -> Tolerance.get tol i >= tau_floor)
          (Syntax.tolerance_indices kb)
      in
      List.iter
        (fun tol ->
          if not (resolvable tol) then
            emit "tolerance-dropped"
              [ ("tol", Trace.S (Fmt.str "%a" Tolerance.pp tol));
                ("reason", Trace.S "below the 1/N resolution of the size grid")
              ])
        tols;
      let tols = List.filter resolvable tols in
      emit "grid"
        [ ("sizes", Trace.S (String.concat "," (List.map string_of_int ns)));
          ("tau_floor", Trace.F tau_floor);
          ("tolerance_steps", Trace.I (List.length tols))
        ];
      if tols = [] then
        declined
          "every tolerance step is below the resolution of the feasible \
           domain sizes"
      else begin
      (* Aitken extrapolation is only trustworthy when the series
         actually contracts geometrically: with step ratio r = d2/d1,
         the extrapolated jump beyond the last value is |d2|·r/(1−r),
         which the 1/(1−r) factor blows up without bound as r → 1.
         At fuzzing-scale grids this produced confident Points on the
         wrong side of the limit (a series decreasing towards 0.5 was
         "extrapolated" to 0.41). So each inner limit is an interval:
         a degenerate one when the ratio certifies contraction, a
         bracket in the direction of travel when it does not — r ≤ 0.9
         still bounds the remaining distance by 9·|d2|. *)
      let flat = 1e-9 in
      let bracket x2 d2 =
        let far = x2 +. (9.0 *. d2) in
        ( Rw_prelude.Floats.clamp01 (Float.min x2 far),
          Rw_prelude.Floats.clamp01 (Float.max x2 far) )
      in
      let pr ~n ~tol =
        let table =
          match compiled with
          | Some c -> Rw_compile.Compiled_kb.profile_table c parts ~n ~tol
          | None -> None
        in
        Profile.pr_n ?table parts ~query ~n ~tol
      in
      let inner_limit tol =
        let vals =
          List.filter_map
            (fun n ->
              match pr ~n ~tol with
              | Some v -> Some (n, v)
              | None -> None)
            ns
        in
        match vals with
        | [] -> None
        | [ (n, v) ] ->
          (* One usable size says nothing about the trend, and the
             finite-size bias (constant coincidences, granularity) is
             O(1/N): all we can honestly claim is a ±1/n bracket. *)
          let pad = 1.0 /. float_of_int n in
          Some
            ( "single-size",
              ( Rw_prelude.Floats.clamp01 (v -. pad),
                Rw_prelude.Floats.clamp01 (v +. pad) ) )
        | vals ->
          let vs = List.map snd vals in
          let k = List.length vs in
          let x2 = List.nth vs (k - 1) and x1 = List.nth vs (k - 2) in
          let d2 = x2 -. x1 in
          if Float.abs d2 <= flat then Some ("flat", (x2, x2))
          else if k = 2 then Some ("bracket", bracket x2 d2)
          else begin
            let x0 = List.nth vs (k - 3) in
            let d1 = x1 -. x0 in
            (* A non-directional (oscillating, or step-growing) tail on
               an exact, mathematically convergent Pr_N series is
               tolerance-granularity noise, not a convergence trend:
               bound the limit by the hull of the last two values,
               padded by one step plus the O(1/N) finite-size bias
               floor — the step alone understates badly when the
               series has barely started moving at these sizes. *)
            let noise () =
              let pad = Float.abs d2 +. (1.0 /. float_of_int max_n) in
              Some
                ( "noise-hull",
                  ( Rw_prelude.Floats.clamp01 (Float.min x1 x2 -. pad),
                    Rw_prelude.Floats.clamp01 (Float.max x1 x2 +. pad) ) )
            in
            if Float.abs d1 <= flat then noise ()
            else begin
              let r = d2 /. d1 in
              if r > 0.0 && r <= 0.75 then begin
                (* Certified contraction; the limit of probabilities is
                   still a probability, so keep the value in [0,1]. *)
                let v = Rw_prelude.Floats.clamp01 (Limits.richardson vs) in
                Some ("richardson", (v, v))
              end
              else if r > 0.0 && r < 1.0 then
                (* Genuinely slow monotone decay. *)
                Some ("bracket", bracket x2 d2)
              else noise ()
            end
          end
      in
      let per_tol =
        List.filter_map
          (fun tol ->
            match inner_limit tol with
            | Some (meth, (lo, hi)) ->
              emit "tolerance"
                [ ("tol", Trace.S (Fmt.str "%a" Tolerance.pp tol));
                  ("method", Trace.S meth);
                  ("lo", Trace.F lo);
                  ("hi", Trace.F hi)
                ];
              Some (tol, (lo, hi))
            | None -> None)
          tols
      in
      match per_tol with
      | [] -> Answer.make ~engine:"unary" Answer.Inconsistent
      | _ ->
        let point_like (lo, hi) = hi -. lo <= 1e-9 in
        let notes =
          List.map
            (fun (tol, (lo, hi)) ->
              if point_like (lo, hi) then Fmt.str "%a -> %.6f" Tolerance.pp tol lo
              else Fmt.str "%a -> [%.6f, %.6f]" Tolerance.pp tol lo hi)
            per_tol
        in
        if List.for_all (fun (_, iv) -> point_like iv) per_tol then begin
          let values = List.map (fun (_, (lo, _)) -> lo) per_tol in
          match Limits.detect ~atol:0.02 values with
          | Limits.Converged v ->
            emit "limit"
              [ ("verdict", Trace.S "converged"); ("value", Trace.F v) ];
            Answer.make ~notes ~engine:"unary"
              (Answer.Point (Rw_prelude.Floats.clamp01 v))
          | Limits.Oscillating (a, b) ->
            emit "limit"
              [ ("verdict", Trace.S "oscillating");
                ("lo", Trace.F a);
                ("hi", Trace.F b)
              ];
            Answer.make ~notes ~engine:"unary"
              (Answer.No_limit (Fmt.str "oscillates between %.4f and %.4f" a b))
          | Limits.Insufficient ->
            let last = List.nth values (List.length values - 1) in
            emit "limit"
              [ ("verdict", Trace.S "insufficient"); ("last", Trace.F last) ];
            Answer.make ~notes ~engine:"unary"
              (Answer.Within
                 (Rw_prelude.Interval.clamp01
                    (Rw_prelude.Interval.widen (Rw_prelude.Interval.point last) 0.05)))
        end
        else begin
          (* Mixed evidence: some tolerance steps certified a
             contraction and extrapolated to a point, others only
             bracketed. A certified extrapolation is the sharpest
             estimate available — when every certified point agrees
             and every bracket corroborates it, report the point;
             otherwise fall back to the honest hull of everything. *)
          let points =
            List.filter_map
              (fun (_, ((lo, _) as iv)) -> if point_like iv then Some lo else None)
              per_tol
          in
          let hull () =
            let lo =
              List.fold_left (fun acc (_, (l, _)) -> Float.min acc l) 1.0 per_tol
            and hi =
              List.fold_left (fun acc (_, (_, h)) -> Float.max acc h) 0.0 per_tol
            in
            emit "limit"
              [ ("verdict", Trace.S "hull");
                ("lo", Trace.F lo);
                ("hi", Trace.F hi)
              ];
            Answer.make ~notes ~engine:"unary"
              (Answer.Within
                 (Rw_prelude.Interval.clamp01 (Rw_prelude.Interval.make lo hi)))
          in
          match points with
          | [] -> hull ()
          | _ ->
            let v =
              List.fold_left ( +. ) 0.0 points /. float_of_int (List.length points)
            in
            let agree =
              List.for_all (fun p -> Float.abs (p -. v) <= 0.02) points
              && List.for_all
                   (fun (_, (lo, hi)) -> lo -. 0.02 <= v && v <= hi +. 0.02)
                   per_tol
            in
            if agree then begin
              emit "limit"
                [ ("verdict", Trace.S "certified-points-agree");
                  ("value", Trace.F v)
                ];
              Answer.make ~notes ~engine:"unary"
                (Answer.Point (Rw_prelude.Floats.clamp01 v))
            end
            else hull ()
        end
      end
    end
  end
