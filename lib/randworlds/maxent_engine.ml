(** The asymptotic engine for unary knowledge bases: degrees of belief
    via maximum entropy (Section 6).

    By the concentration phenomenon, as [N → ∞] almost all worlds
    satisfying the KB lie near the maximum-entropy point of the
    constraint set [S(KB)], so:

    - a query about named individuals is answered from the atom
      distribution at the maxent point, conditioned on each
      individual's known facts (distinct constants are asymptotically
      independent given the atom proportions);
    - a closed statistical query holds with degree of belief 1 if the
      maxent point satisfies it (0 if it violates it).

    The outer [τ̄ → 0] limit is taken numerically over a shrinking
    tolerance schedule with Aitken extrapolation. *)

open Rw_logic
open Rw_unary
open Syntax
module Trace = Rw_trace.Trace

module Compiled_kb = Rw_compile.Compiled_kb

(* The engine's τ̄-schedule is owned by the compile subsystem, so that a
   compiled KB's eagerly pre-solved schedule and the schedule walked
   here can never drift apart. *)
let default_tols = Compiled_kb.default_schedule

exception Outside_fragment of string

(* Truth of a boolean-combination-over-constants formula, given an
   atom assignment for each constant. *)
let rec eval_const_bool u assign = function
  | True -> true
  | False -> false
  | Pred (p, [ Fn (c, []) ]) -> (
    match List.assoc_opt c assign with
    | Some a -> Atoms.atom_satisfies u a p
    | None -> raise (Outside_fragment (Printf.sprintf "constant %s unknown" c)))
  | Not f -> not (eval_const_bool u assign f)
  | And (f, g) -> eval_const_bool u assign f && eval_const_bool u assign g
  | Or (f, g) -> eval_const_bool u assign f || eval_const_bool u assign g
  | Implies (f, g) -> (not (eval_const_bool u assign f)) || eval_const_bool u assign g
  | Iff (f, g) -> eval_const_bool u assign f = eval_const_bool u assign g
  | f -> raise (Outside_fragment (Fmt.str "query conjunct %a" Pretty.pp_formula f))

(* Probability of a boolean query over constants, under independent
   per-constant atom distributions. *)
let const_query_prob u dists query =
  let rec go consts assign acc_p total =
    match consts with
    | [] -> if eval_const_bool u assign query then total +. acc_p else total
    | (c, dist) :: rest ->
      List.fold_left
        (fun total (a, p) ->
          if p <= 0.0 then total else go rest ((c, a) :: assign) (acc_p *. p) total)
        total dist
  in
  go dists [] 1.0 0.0

(* Evaluate a closed statistical formula at the maxent point: the
   concentration theorem gives degree of belief 1 to whatever holds in
   (almost) all worlds near the point. Closed quantified formulas over
   boolean bodies reduce to atom emptiness: [∀x β] holds in almost all
   KB-worlds iff every atom violating β is excluded by the universal
   facts (an atom merely carrying zero or τ-small *proportion* still
   has members in almost all large worlds); dually [∃x β] fails only
   when no allowed atom satisfies β. *)
let rec stat_truth_at_point sol tol f =
  match f with
  | True -> true
  | False -> false
  | Not g -> not (stat_truth_at_point sol tol g)
  | And (g, h) -> stat_truth_at_point sol tol g && stat_truth_at_point sol tol h
  | Or (g, h) -> stat_truth_at_point sol tol g || stat_truth_at_point sol tol h
  | Implies (g, h) ->
    (not (stat_truth_at_point sol tol g)) || stat_truth_at_point sol tol h
  | Iff (g, h) -> stat_truth_at_point sol tol g = stat_truth_at_point sol tol h
  | Forall (x, body) -> begin
    let u = sol.Solver.parts.Analysis.universe in
    match Atoms.extension_var u x body with
    | sat ->
      let allowed = Analysis.allowed_atoms sol.Solver.parts in
      Atoms.Set.subset allowed sat
    | exception Atoms.Not_boolean _ ->
      raise (Outside_fragment "quantified query with non-boolean body")
  end
  | Exists (x, body) -> begin
    let u = sol.Solver.parts.Analysis.universe in
    match Atoms.extension_var u x body with
    | sat ->
      let allowed = Analysis.allowed_atoms sol.Solver.parts in
      not (Atoms.Set.is_empty (Atoms.Set.inter allowed sat))
    | exception Atoms.Not_boolean _ ->
      raise (Outside_fragment "quantified query with non-boolean body")
  end
  | Compare (z1, cmp, z2) -> begin
    (* Solver residual slack: a query that restates a KB constraint
       sits exactly on the feasible boundary, and must not flip to
       false on numerical noise (e.g. Reflexivity, Pr(KB | KB) = 1).
       Conditional-vs-constant comparisons are tested in the same
       multiplied-out form the constraints were enforced in. *)
    let slack = 1e-5 in
    let u = sol.Solver.parts.Analysis.universe in
    let cond_vs_const f g x q =
      match
        (Atoms.extension_var u x (And (f, g)), Atoms.extension_var u x g)
      with
      | num, den ->
        let xm = Solver.mass sol num and ym = Solver.mass sol den in
        let tau = match cmp with Approx_eq i | Approx_le i -> Tolerance.get tol i in
        Some
          (match cmp with
          | Approx_eq _ -> Float.abs (xm -. (q *. ym)) <= (tau *. ym) +. slack
          | Approx_le _ -> xm <= ((q +. tau) *. ym) +. slack)
      | exception Atoms.Not_boolean _ -> None
    in
    let special =
      match (z1, z2) with
      | Cond (f, g, [ x ]), z -> (
        match prop_at_point sol z with
        | Some q -> cond_vs_const f g x q
        | None -> None)
      | z, Cond (f, g, [ x ]) -> (
        match prop_at_point sol z with
        | Some q -> (
          match cmp with
          | Approx_eq _ -> cond_vs_const f g x q
          | Approx_le _ -> (
            (* q ⪯ cond: (q − τ)·y ≤ x *)
            match
              (Atoms.extension_var u x (And (f, g)), Atoms.extension_var u x g)
            with
            | num, den ->
              let xm = Solver.mass sol num and ym = Solver.mass sol den in
              let tau = match cmp with Approx_eq i | Approx_le i -> Tolerance.get tol i in
              Some (((q -. tau) *. ym) -. slack <= xm)
            | exception Atoms.Not_boolean _ -> None))
        | None -> None)
      | _ -> None
    in
    match special with
    | Some b -> b
    | None -> (
      match (prop_at_point sol z1, prop_at_point sol z2) with
      | Some a, Some b -> (
        match cmp with
        | Approx_eq i -> Float.abs (a -. b) <= Tolerance.get tol i +. slack
        | Approx_le i -> a <= b +. Tolerance.get tol i +. slack)
      | None, _ | _, None -> true)
  end
  | f -> raise (Outside_fragment (Fmt.str "statistical query %a" Pretty.pp_formula f))

and prop_at_point sol z =
  let u = sol.Solver.parts.Analysis.universe in
  match z with
  | Num x -> Some x
  | Prop (f, [ x ]) -> (
    match Atoms.extension_var u x f with
    | set -> Some (Solver.mass sol set)
    | exception Atoms.Not_boolean _ -> raise (Outside_fragment "non-boolean proportion"))
  | Cond (f, g, [ x ]) -> (
    match (Atoms.extension_var u x (And (f, g)), Atoms.extension_var u x g) with
    | num, den ->
      let md = Solver.mass sol den in
      if md <= 0.0 then None else Some (Solver.mass sol num /. md)
    | exception Atoms.Not_boolean _ -> raise (Outside_fragment "non-boolean proportion"))
  | Prop _ | Cond _ -> raise (Outside_fragment "multi-variable proportion")
  | Add (z1, z2) -> (
    match (prop_at_point sol z1, prop_at_point sol z2) with
    | Some a, Some b -> Some (a +. b)
    | _ -> None)
  | Mul (z1, z2) -> (
    match (prop_at_point sol z1, prop_at_point sol z2) with
    | Some a, Some b -> Some (a *. b)
    | _ -> None)

(* Split a query conjunction into a part about constants and a closed
   statistical part (proportion comparisons and closed quantified
   formulas, both handled by [stat_truth_at_point]). *)
let split_query query =
  let conjuncts = Analysis.split_conjuncts query in
  List.fold_left
    (fun (consts, stats) c ->
      match c with
      | (Compare _ | Forall _ | Exists _) when Syntax.is_closed c ->
        (consts, c :: stats)
      | _ -> (c :: consts, stats))
    ([], []) conjuncts

(* Flatten a top-level disjunction of knowledge bases. *)
let rec flatten_or = function
  | Or (a, b) -> flatten_or a @ flatten_or b
  | f -> [ f ]

(** [belief_at ~kb ~query tol] — the degree of belief at one fixed
    tolerance vector. [None] when conditioning is impossible at this
    tolerance.

    A disjunctive KB [KB₁ ∨ … ∨ KB_m] is handled through the
    concentration argument: [#worlds(KB_i) ≈ e^{N·H_i}], so the
    disjuncts of maximal maximum-entropy dominate the count as
    [N → ∞]; when every dominant disjunct yields the same belief, that
    is the answer (this validates the Or rule of Theorem 5.3 — e.g.
    Example 5.4's broken-arm KB). Dominant disjuncts that disagree are
    reported as outside the fragment (the mixture weights then depend
    on sub-exponential terms this engine does not track).

    @raise Outside_fragment / [Constraints.Unsupported] when KB or
    query leave the unary fragment.
    @raise Solver.Infeasible when the KB is inconsistent at [tol]. *)
let rec belief_at ?compiled ~kb ~query tol =
  match flatten_or kb with
  | [] | [ _ ] -> belief_at_conjunctive ?compiled ~kb ~query tol
  | disjuncts -> begin
    (* Sub-KBs of a disjunction are not the compiled KB: from-scratch. *)
    let evaluated =
      List.filter_map
        (fun d ->
          match
            let parts =
              Analysis.analyze ~extra_preds:(Unary_engine.unary_preds_of query) d
            in
            if not (Analysis.fully_supported parts) then
              raise (Outside_fragment "disjunct outside the unary fragment")
            else (Solver.solve parts tol, belief_at ~kb:d ~query tol)
          with
          | sol, Some b -> Some (sol.Solver.entropy, b)
          | _, None -> None
          | exception Solver.Infeasible _ -> None (* dead disjunct *))
        disjuncts
    in
    match evaluated with
    | [] -> raise (Solver.Infeasible 1.0)
    | _ -> begin
      let hmax = List.fold_left (fun m (h, _) -> Float.max m h) neg_infinity evaluated in
      let dominant = List.filter (fun (h, _) -> h >= hmax -. 1e-9) evaluated in
      let beliefs = List.map snd dominant in
      let bmin = List.fold_left Float.min 1.0 beliefs in
      let bmax = List.fold_left Float.max 0.0 beliefs in
      if bmax -. bmin <= 1e-6 then Some bmin
      else
        raise
          (Outside_fragment
             "disjunctive KB whose dominant disjuncts disagree on the query")
    end
  end

and belief_at_conjunctive ?compiled ~kb ~query tol =
  let parts = Analysis.analyze ~extra_preds:(Unary_engine.unary_preds_of query) kb in
  if not (Analysis.fully_supported parts) then
    raise (Outside_fragment "KB outside the unary fragment")
  else begin
    (* With a compiled artifact, the unconditioned maxent solve comes
       from its memo table whenever the query's analysis matches the
       compiled one (no new predicates); incompatible queries fall back
       to a fresh solve inside [Compiled_kb.solve]. *)
    let solve tol =
      match compiled with
      | Some c -> Compiled_kb.solve c parts tol
      | None -> Solver.solve parts tol
    in
    let u = parts.Analysis.universe in
    let const_part, stat_part = split_query query in
    let stat_prob =
      if stat_part = [] then Some 1.0
      else begin
        let sol = solve tol in
        if stat_truth_at_point sol tol (conj stat_part) then Some 1.0 else Some 0.0
      end
    in
    let const_prob =
      if const_part = [] then Some 1.0
      else begin
        let query_c = conj const_part in
        let consts = Syntax.constants query_c in
        if consts = [] then raise (Outside_fragment "query mentions no constants")
        else begin
          let dists =
            List.map
              (fun c ->
                let given = Analysis.fact_atoms parts c in
                match Solver.conditional_distribution ~solve parts tol ~given with
                | Some d -> (c, d)
                | None -> raise (Solver.Infeasible 1.0))
              consts
          in
          Some (const_query_prob u dists query_c)
        end
      end
    in
    match (stat_prob, const_prob) with
    | Some a, Some b -> Some (a *. b)
    | _ -> None
  end

(* The entropy-maximum profile, for the trace only: entropy, constraint
   count, and per-atom mass at the first tolerance that solved. Runs
   exclusively when tracing is on; any failure is silently dropped —
   emission must never change the engine's verdict. *)
let emit_profile tr ?compiled ~kb ~query tol =
  match
    let parts =
      Analysis.analyze ~extra_preds:(Unary_engine.unary_preds_of query) kb
    in
    let sol =
      match compiled with
      | Some c -> Compiled_kb.solve c parts tol
      | None -> Solver.solve parts tol
    in
    let u = parts.Analysis.universe in
    let n_constraints = List.length (Constraints.of_parts parts tol) in
    let atom_fields =
      List.init (Atoms.num_atoms u) (fun i ->
          ( Fmt.str "%a" (Atoms.pp_atom u) i,
            Trace.F (Solver.mass sol (Atoms.Set.of_list (Atoms.num_atoms u) [ i ]))
          ))
    in
    ("entropy", Trace.F sol.Solver.entropy)
    :: ("tol", Trace.S (Fmt.str "%a" Tolerance.pp tol))
    :: ("constraints", Trace.I n_constraints)
    :: atom_fields
  with
  | fields -> Trace.fact tr "maxent-profile" fields
  | exception _ -> ()

(** [estimate ?tols ?compiled ?trace ~kb query] — the [τ̄ → 0] limit
    over a shrinking schedule with Aitken extrapolation. [compiled]
    reuses the artifact's pre-solved maxent points; answers are
    identical with or without it. *)
let rec estimate ?(tols = default_tols) ?compiled ?trace ~kb query =
  Trace.span trace "maxent" @@ fun () ->
  let declined why =
    (match trace with
    | None -> ()
    | Some tr -> Trace.fact tr "note" [ ("declined", Trace.S why) ]);
    Answer.make ~engine:"maxent" (Answer.Not_applicable why)
  in
  try estimate_exn ~tols ~compiled ~trace ~kb query with
  | Outside_fragment why -> declined why
  | Constraints.Unsupported (why, _) -> declined why
  | Atoms.Not_boolean _ -> declined "non-boolean subformula"
  | Profile.Unsupported why -> declined why
  | Invalid_argument why -> declined why

and estimate_exn ~tols ~compiled ~trace ~kb query =
  let values =
    List.filter_map
      (fun tol ->
        match belief_at ?compiled ~kb ~query tol with
        | Some v -> Some (tol, v)
        | None -> None
        | exception Solver.Infeasible _ -> None)
      tols
  in
  (match (trace, values) with
  | Some tr, (tol0, _) :: _ ->
    emit_profile tr ?compiled ~kb ~query tol0;
    List.iter
      (fun (tol, v) ->
        Trace.fact tr "tolerance"
          [ ("tol", Trace.S (Fmt.str "%a" Tolerance.pp tol)); ("value", Trace.F v) ])
      values
  | _ -> ());
  match values with
  | [] -> (
    (* Distinguish "inconsistent" from "outside fragment". *)
    match belief_at ?compiled ~kb ~query (List.hd tols) with
    | exception Outside_fragment why ->
      Answer.make ~engine:"maxent" (Answer.Not_applicable why)
    | exception Constraints.Unsupported (why, _) ->
      Answer.make ~engine:"maxent" (Answer.Not_applicable why)
    | exception Solver.Infeasible _ -> Answer.make ~engine:"maxent" Answer.Inconsistent
    | _ -> Answer.make ~engine:"maxent" Answer.Inconsistent)
  | _ -> begin
    let notes =
      List.map (fun (tol, v) -> Fmt.str "%a -> %.6f" Tolerance.pp tol v) values
    in
    let scales = List.map (fun (tol, _) -> tol.Tolerance.scale) values in
    let vs = List.map snd values in
    (* Fixed-τ values of a well-behaved query sit within O(τ) of the
       limit, so extrapolate the τ → 0 intercept by least squares; the
       residual tells us whether the linear model (and hence the limit)
       is credible. *)
    let intercept, slope, resid = Limits.linear_intercept scales vs in
    let extrapolated = Rw_prelude.Floats.clamp01 intercept in
    let max_scale = List.fold_left Float.max 0.0 scales in
    let snap v =
      if v < 5e-3 then 0.0 else if v > 1.0 -. 5e-3 then 1.0 else v
    in
    let accepted = resid <= 2e-3 +. (0.05 *. Float.abs slope *. max_scale) in
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.fact tr "extrapolation"
        [ ("method", Trace.S "least-squares tau->0 intercept");
          ("intercept", Trace.F intercept);
          ("slope", Trace.F slope);
          ("residual", Trace.F resid);
          ("accepted", Trace.B accepted)
        ]);
    if accepted then
      Answer.make ~notes ~engine:"maxent" (Answer.Point (snap extrapolated))
    else begin
      match Limits.detect ~atol:5e-3 vs with
      | Limits.Converged v -> Answer.make ~notes ~engine:"maxent" (Answer.Point (snap v))
      | Limits.Oscillating (a, b) ->
        Answer.make ~notes ~engine:"maxent"
          (Answer.No_limit (Fmt.str "oscillates between %.4f and %.4f" a b))
      | Limits.Insufficient ->
        Answer.make ~notes ~engine:"maxent"
          (Answer.Within
             (Rw_prelude.Interval.clamp01
                (Rw_prelude.Interval.widen
                   (Rw_prelude.Interval.point extrapolated)
                   (Float.max 0.05 resid))))
    end
  end
