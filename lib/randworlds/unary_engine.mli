(** The exact unary engine: [Pr_N^τ̄] by multinomial aggregation over
    atom-count profiles, then the double limit along an (N, τ̄)
    schedule. Exact at each grid point like enumeration, but reaching
    domain sizes in the tens-to-hundreds. Fragment: unary predicates +
    constants, no equality. *)

open Rw_logic

val default_sizes : int list

val unary_preds_of : Syntax.formula -> string list
(** The unary predicate names of a formula (used to build a shared atom
    universe for KB and query). *)

val pr_n :
  kb:Syntax.formula ->
  query:Syntax.formula ->
  n:int ->
  tol:Tolerance.t ->
  float option
(** Exact finite-[N] degree of belief.
    @raise Rw_unary.Profile.Unsupported outside the fragment. *)

val series :
  kb:Syntax.formula ->
  query:Syntax.formula ->
  ns:int list ->
  tol:Tolerance.t ->
  (int * float) list

val estimate :
  ?ns:int list ->
  ?tols:Tolerance.t list ->
  ?compiled:Rw_compile.Compiled_kb.t ->
  ?trace:Rw_trace.Trace.t ->
  kb:Syntax.formula ->
  Syntax.formula ->
  Answer.t
(** The double limit over a grid, with Aitken extrapolation of the
    inner [N → ∞] limit at each tolerance. Declines (rather than
    raising) outside the fragment or when the atom space is too large
    for exact counting. [?trace] records the kept size grid and
    tolerance floor, dropped tolerance steps, the per-tolerance inner
    limit with the method that produced it (richardson / bracket /
    noise-hull / …), and the final limit verdict. [?compiled] swaps the
    per-(N, τ̄) composition sweep for the artifact's precomputed
    stat-satisfying profile tables; results are bit-identical. *)
