(** The top-level degree-of-belief engine: dispatch across the four
    computation strategies, most exact/cheapest first.

    1. {b rules} — syntactic theorems (sound intervals, any arity);
    2. {b independence decomposition} — Theorem 5.27 splits queries
       over disjoint sub-vocabularies into products;
    3. {b maxent} — asymptotic values for unary KBs;
    4. {b unary} — exact finite-[N] counting with extrapolation;
    5. {b enum} — literal world enumeration at small [N];
    6. {b mc} — Monte-Carlo world sampling with confidence intervals,
       engaged when the enumeration guard is blown (and as an
       independent statistical cross-check where enum applies).

    A rule-engine interval is refined by the maxent point when the two
    agree (the point falls inside the interval); disagreement keeps the
    provably-sound interval and notes the conflict. *)

open Rw_logic
open Syntax
module Trace = Rw_trace.Trace

type options = {
  tols : Tolerance.t list option;  (** tolerance schedule override *)
  unary_sizes : int list option;  (** domain sizes for the unary engine *)
  enum_sizes : int list option;  (** domain sizes for the enumeration engine *)
  use_enum : bool;  (** allow the (expensive) literal engine *)
  mc_seed : int;  (** PRNG seed for the Monte-Carlo engine *)
  mc_samples : int option;  (** Monte-Carlo sample budget override *)
  mc_ci_width : float option;  (** Monte-Carlo target CI half-width *)
  mc_sizes : int list option;  (** domain sizes for the Monte-Carlo engine *)
  mc_cross_check : bool;
      (** statistically cross-check exact enum points by sampling *)
  jobs : int;
      (** domain-pool width for the Monte-Carlo sampler; answers are
          jobs-invariant by construction, so this knob is excluded
          from the service's options fingerprint *)
}

let default_options =
  {
    tols = None;
    unary_sizes = None;
    enum_sizes = None;
    use_enum = true;
    mc_seed = Mc_engine.default_seed;
    mc_samples = None;
    mc_ci_width = None;
    mc_sizes = None;
    mc_cross_check = true;
    jobs = 1;
  }

(* Symbols of a formula, for the independence split: predicates and
   non-constant functions always separate; constants are listed apart. *)
let split_symbols f =
  let preds, funcs = Syntax.symbols f in
  let hard =
    List.map (fun (p, a) -> ("P:" ^ p, a)) preds
    @ List.filter_map
        (fun (g, a) -> if a > 0 then Some ("F:" ^ g, a) else None)
        funcs
  in
  (List.map fst hard, Syntax.constants f)

(* Theorem 5.27: try to split query = q1 ∧ q2 and KB = kb1 ∧ kb2 with
   vocabularies disjoint except for (at most) one shared constant. *)
let independence_split ~kb query =
  let qs = Rw_unary.Analysis.split_conjuncts query in
  if List.length qs < 2 then None
  else begin
    let kbs = Rw_unary.Analysis.split_conjuncts kb in
    let items = List.map (fun f -> (f, split_symbols f)) (qs @ kbs) in
    (* Union-find over items: connect when sharing a predicate/function
       symbol or sharing more than the single allowed constant. *)
    let n = List.length items in
    let arr = Array.of_list items in
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j = parent.(find i) <- find j in
    (* Only a single shared constant is covered by Theorem 5.27. *)
    let shared_allowed =
      match Syntax.constants query with [ c ] -> [ c ] | _ -> []
    in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let _, (hi, ci) = arr.(i) and _, (hj, cj) = arr.(j) in
        let share_hard = List.exists (fun s -> List.mem s hj) hi in
        let share_const =
          List.exists (fun c -> List.mem c cj && not (List.mem c shared_allowed)) ci
        in
        if share_hard || share_const then union i j
      done
    done;
    (* Group query conjuncts by component. *)
    let comp_of i = find i in
    let q_indices = List.mapi (fun i _ -> i) qs in
    let q_comps = List.sort_uniq Stdlib.compare (List.map comp_of q_indices) in
    if List.length q_comps < 2 then None
    else begin
      let nq = List.length qs in
      let groups =
        List.map
          (fun comp ->
            let in_comp_q = ref [] and in_comp_kb = ref [] in
            Array.iteri
              (fun i (f, _) ->
                if comp_of i = comp then
                  if i < nq then in_comp_q := f :: !in_comp_q
                  else in_comp_kb := f :: !in_comp_kb)
              arr;
            (conj (List.rev !in_comp_q), conj (List.rev !in_comp_kb)))
          q_comps
      in
      (* KB conjuncts in components with no query conjunct are ignored:
         by Theorem 5.27 they multiply both numerator and denominator. *)
      Some groups
    end
  end

(* Trace emission helpers shared by the dispatch functions: [emit] is a
   no-op when tracing is off; [selected] stamps the "engine-selected"
   fact the trace consumers ({!Rw_trace.Trace.selected_engine}, the
   --explain renderer) treat as the dispatch verdict. Nested dispatches
   (the independence split) each stamp their own; chronological order
   makes the outermost stamp last, which is the one [selected_engine]
   reports. *)
let emit trace tag fields =
  match trace with None -> () | Some tr -> Trace.fact tr tag fields

let selected trace reason (answer : Answer.t) =
  emit trace "engine-selected"
    [ ("engine", Trace.S answer.Answer.engine); ("reason", Trace.S reason) ];
  answer

module Compiled_kb = Rw_compile.Compiled_kb

(* Gate an artifact on structural identity with the KB actually being
   queried: digests are canonical (alpha/AC), so a digest-keyed cache
   can in principle hand back an artifact for a structurally different
   formula — which must be ignored, not consumed. *)
let checked_compiled compiled ~kb =
  match compiled with
  | Some c when Compiled_kb.matches c kb -> compiled
  | _ -> None

(* Record one consumption (provenance, satellite of the compile
   subsystem): the use counter distinguishes the answer that paid for
   the compile from answers reusing the pre-solved maxent point, and
   the trace fact makes that visible to [--explain]. *)
let consume_compiled trace compiled =
  match compiled with
  | None -> ()
  | Some c ->
    let prior = Compiled_kb.use c in
    let digest = Compiled_kb.digest c in
    emit trace "compiled-kb"
      [ ("digest", Trace.S (String.sub digest 0 (min 12 (String.length digest))));
        ("compile_ms", Trace.F (Compiled_kb.compile_ms c));
        ( "maxent_point",
          Trace.S (if prior > 0 then "reused" else "fresh-solve") )
      ]

let rec infer ?(options = default_options) ?compiled ?trace ~kb query =
  Trace.span trace "dispatch" @@ fun () ->
  let compiled = checked_compiled compiled ~kb in
  consume_compiled trace compiled;
  let rules_answer = Rules_engine.infer ?compiled ?trace ~kb query in
  match rules_answer.Answer.result with
  | Answer.Point _ | Answer.No_limit _ | Answer.Inconsistent ->
    selected trace "syntactic theorem application was definitive" rules_answer
  | Answer.Within interval -> begin
    (* Try to refine the interval to a point with the maxent engine. *)
    match refine ~options ~compiled ~trace ~kb query with
    | Some a -> begin
      match Answer.point_value a with
      | Some v when Rw_prelude.Interval.mem ~eps:1e-6 v interval ->
        emit trace "refinement"
          [ ("outcome", Trace.S "sharpened");
            ("point", Trace.F v);
            ("interval", Trace.S (Fmt.str "%a" Rw_prelude.Interval.pp interval))
          ];
        selected trace
          "maxent point agrees with (and sharpens) the sound rules interval"
          { a with Answer.notes = a.Answer.notes @ rules_answer.Answer.notes }
      | _ ->
        emit trace "refinement"
          [ ("outcome", Trace.S "kept-interval");
            ("reason", Trace.S "maxent point outside the sound interval")
          ];
        selected trace "rules interval kept: refinement disagreed" rules_answer
    end
    | None ->
      selected trace "rules interval kept: maxent was not definitive"
        rules_answer
  end
  | Answer.Not_applicable _ -> begin
    match independence_split ~kb query with
    | Some groups when List.length groups > 1 -> begin
      emit trace "theorem"
        [ ("id", Trace.S "5.27");
          ("name", Trace.S "independent sub-vocabularies");
          ("parts", Trace.I (List.length groups))
        ];
      let sub_answers =
        List.map (fun (q, k) -> infer ~options ?trace ~kb:k q) groups
      in
      let values = List.map Answer.point_value sub_answers in
      if List.for_all Option.is_some values then begin
        let v =
          List.fold_left (fun acc o -> acc *. Option.get o) 1.0 values
        in
        selected trace "Theorem 5.27: product over independent parts"
          (Answer.make
             ~notes:
               ("Theorem 5.27 (independent sub-vocabularies): product of parts"
               :: List.concat_map (fun a -> a.Answer.notes) sub_answers)
             ~engine:"independence" (Answer.Point v))
      end
      else begin
        emit trace "note"
          [ ("text",
             Trace.S "independence split abandoned: a part had no point value")
          ];
        fallback ~options ~compiled ~trace ~kb query
      end
    end
    | _ -> fallback ~options ~compiled ~trace ~kb query
  end

and refine ~options ~compiled ~trace ~kb query =
  let a = Maxent_engine.estimate ?tols:options.tols ?compiled ?trace ~kb query in
  if Answer.definitive a then Some a else None

and fallback ~options ~compiled ~trace ~kb query =
  let a = Maxent_engine.estimate ?tols:options.tols ?compiled ?trace ~kb query in
  if Answer.definitive a then
    selected trace "maxent concentration was definitive" a
  else begin
    let a =
      try
        Unary_engine.estimate ?ns:options.unary_sizes ?compiled ?trace ~kb query
      with _ ->
        Answer.make ~engine:"unary" (Answer.Not_applicable "engine error")
    in
    if Answer.definitive a then
      selected trace "exact unary counting was definitive" a
    else if not options.use_enum then
      selected trace "every engine declined"
        (Answer.make ~engine:"dispatch"
           (Answer.Not_applicable "no engine applicable (enum disabled)"))
    else begin
      (* The artifact's KB vocabulary merged with the query's is exactly
         [Vocab.of_formulas [kb; query]] (both sort-unique their symbol
         lists), so the compiled path skips the KB re-scan. *)
      let vocab =
        match compiled with
        | Some c -> Vocab.merge (Compiled_kb.vocab c) (Vocab.of_formula query)
        | None -> Vocab.of_formulas [ kb; query ]
      in
      (* A tighter guard than the raw engine's: the dispatcher is a
         default code path and must stay responsive; callers wanting
         heroic enumerations can invoke Enum_engine directly. When the
         world count blows past the guard, the Monte-Carlo engine
         takes over — same ratio over W_N(Φ), estimated instead of
         enumerated. *)
      match
        Enum_engine.estimate ~max_log10_worlds:6.5 ?ns:options.enum_sizes
          ?trace ~vocab ~kb query
      with
      | a when Answer.definitive a ->
        let a =
          if options.mc_cross_check then
            cross_check ~options ~trace ~vocab ~kb query a
          else a
        in
        selected trace "exhaustive enumeration over the (N, tau) grid" a
      | _ -> monte_carlo ~options ~compiled ~trace ~vocab ~kb query None
      | exception Rw_model.Enum.Too_many_worlds m ->
        monte_carlo ~options ~compiled ~trace ~vocab ~kb query (Some m)
    end
  end

and monte_carlo ~options ~compiled ~trace ~vocab ~kb query blown =
  (match blown with
  | Some m ->
    emit trace "engine"
      [ ("engine", Trace.S "enum");
        ("outcome",
         Trace.S (Printf.sprintf "infeasible (10^%.0f worlds)" m))
      ]
  | None ->
    emit trace "engine"
      [ ("engine", Trace.S "enum"); ("outcome", Trace.S "not definitive") ]);
  let a =
    Mc_engine.estimate ~seed:options.mc_seed ?samples:options.mc_samples
      ~jobs:options.jobs ?ns:options.mc_sizes ?ci_width:options.mc_ci_width
      ?tols:options.tols ?compiled ?trace ~vocab ~kb query
  in
  let a =
    match blown with
    | Some m ->
      Answer.add_notes a
        [ Printf.sprintf "mc engaged: enumeration infeasible (10^%.0f worlds)" m ]
    | None -> a
  in
  selected trace "Monte-Carlo world sampling: the last-resort estimator" a

(* An exact enum point still gets an independent statistical check: a
   cheap sampling run at an overlapping (N, τ̄) whose 95% interval must
   contain the exact value. Disagreement is surfaced, not silently
   resolved — the exact count stays the verdict. *)
and cross_check ~options ~trace ~vocab ~kb query answer =
  let checked outcome ~exact ci =
    emit trace "cross-check"
      (( "outcome", Trace.S outcome )
      :: ( "exact", Trace.F exact )
      ::
      (match ci with
      | None -> []
      | Some ci ->
        [ ("ci_lo", Trace.F (Rw_prelude.Interval.lo ci));
          ("ci_hi", Trace.F (Rw_prelude.Interval.hi ci))
        ]))
  in
  match Answer.point_value answer with
  | None -> answer
  | Some _ ->
    let n = 4 and tol = Tolerance.uniform 0.2 in
    if Rw_model.Enum.log10_world_count vocab n > 5.0 then answer
    else begin
      match Enum_engine.pr_n ~vocab ~n ~tol ~kb query with
      | None | (exception Rw_model.Enum.Too_many_worlds _) -> answer
      | Some exact ->
        let config =
          {
            Rw_mc.Estimator.default_config with
            Rw_mc.Estimator.max_samples = 20_000;
            target_halfwidth = 0.05;
            max_seconds = 1.0;
          }
        in
        (match
           Mc_engine.pr_n ~config ~seed:options.mc_seed ~vocab ~n ~tol ~kb query
         with
        | Rw_mc.Estimator.Estimate { ci; stats; _ }
          when Rw_prelude.Interval.mem ~eps:1e-9 exact ci ->
          checked "agrees" ~exact (Some ci);
          Answer.add_notes answer
            [
              Fmt.str
                "mc cross-check at N=%d: exact %.4f inside 95%% CI %a (%a)" n
                exact Rw_prelude.Interval.pp ci Rw_mc.Estimator.pp_stats stats;
            ]
        | Rw_mc.Estimator.Estimate { ci; stats; _ } ->
          checked "disagrees" ~exact (Some ci);
          Answer.add_notes answer
            [
              Fmt.str
                "mc cross-check DISAGREES at N=%d: exact %.4f outside 95%% CI \
                 %a (%a)"
                n exact Rw_prelude.Interval.pp ci Rw_mc.Estimator.pp_stats stats;
            ]
        | Rw_mc.Estimator.Starved stats ->
          checked "starved" ~exact None;
          Answer.add_notes answer
            [
              Fmt.str "mc cross-check starved at N=%d (%a)" n
                Rw_mc.Estimator.pp_stats stats;
            ])
    end

(** [degree_of_belief ~kb query] — the headline API:
    [Pr_∞(query | kb)] computed by the best applicable engine. Every
    call is credited to the winning engine in {!Instr}, which is what
    the query service's [stats] reply reports. [?compiled] threads a
    compiled artifact through every engine; answers are identical with
    or without it, only faster. *)
let degree_of_belief ?options ?compiled ?trace ~kb query =
  let t0 = Instr.now () in
  let answer = infer ?options ?compiled ?trace ~kb query in
  Instr.record ~engine:answer.Answer.engine ~seconds:(Instr.now () -. t0);
  answer

(* ------------------------------------------------------------------ *)
(* Per-engine access — the differential tester compares the engines   *)
(* individually rather than through the dispatch above.               *)
(* ------------------------------------------------------------------ *)

type id = Rules | Maxent | Unary | Enum | Mc

let all_ids = [ Rules; Maxent; Unary; Enum; Mc ]

let id_name = function
  | Rules -> "rules"
  | Maxent -> "maxent"
  | Unary -> "unary"
  | Enum -> "enum"
  | Mc -> "mc"

let id_of_string = function
  | "rules" -> Some Rules
  | "maxent" -> Some Maxent
  | "unary" -> Some Unary
  | "enum" -> Some Enum
  | "mc" -> Some Mc
  | _ -> None

(* Cheap syntactic applicability — "this engine is expected to speak
   here", not "it will certainly reach a point". The oracle uses it to
   decide which engines to interrogate; [run] below stays total either
   way. *)
let applicable ?(options = default_options) eid ~kb query =
  let both = Syntax.And (kb, query) in
  match eid with
  | Rules -> true (* total: at worst Not_applicable *)
  | Maxent | Unary ->
    Syntax.is_unary_vocab both
    && (not (Syntax.mentions_equality both))
    && Syntax.is_closed kb && Syntax.is_closed query
  | Enum ->
    let vocab = Vocab.of_formulas [ kb; query ] in
    let ns = Option.value options.enum_sizes ~default:[ 3; 4; 5; 6 ] in
    Syntax.is_closed kb && Syntax.is_closed query
    && List.exists
         (fun n -> Rw_model.Enum.log10_world_count vocab n <= 6.5)
         ns
  | Mc -> Syntax.is_closed kb && Syntax.is_closed query

(* [run eid ~kb query] — one engine's raw answer, bypassing dispatch.
   Total: engines that raise on out-of-fragment input are caught and
   mapped to [Not_applicable], preserving the Answer contract. *)
let run ?(options = default_options) ?compiled ?trace eid ~kb query =
  let compiled = checked_compiled compiled ~kb in
  consume_compiled trace compiled;
  let enum_vocab () =
    match compiled with
    | Some c -> Vocab.merge (Compiled_kb.vocab c) (Vocab.of_formula query)
    | None -> Vocab.of_formulas [ kb; query ]
  in
  let answer =
    match eid with
    | Rules -> Rules_engine.infer ?compiled ?trace ~kb query
    | Maxent ->
      Maxent_engine.estimate ?tols:options.tols ?compiled ?trace ~kb query
    | Unary -> (
      (* Only the fragment refusal is caught: [applicable] plus
         [Unsupported] cover every legitimate way the engine declines,
         so anything else (e.g. an interval-clamp [Invalid_argument])
         is an invariant break that must surface — the fuzzer's
         agreement oracle reports escaped exceptions as violations. *)
      try
        Unary_engine.estimate ?ns:options.unary_sizes ?tols:options.tols
          ?compiled ?trace ~kb query
      with Rw_unary.Profile.Unsupported why ->
        Answer.make ~engine:"unary" (Answer.Not_applicable why))
    | Enum -> (
      let vocab = enum_vocab () in
      try
        Enum_engine.estimate ~max_log10_worlds:6.5 ?ns:options.enum_sizes
          ?tols:options.tols ?trace ~vocab ~kb query
      with
      | Rw_model.Enum.Too_many_worlds m ->
        Answer.make ~engine:"enum"
          (Answer.Not_applicable
             (Printf.sprintf "enumeration infeasible (10^%.0f worlds)" m))
      | Invalid_argument why ->
        Answer.make ~engine:"enum" (Answer.Not_applicable why))
    | Mc -> (
      let vocab = enum_vocab () in
      try
        Mc_engine.estimate ~seed:options.mc_seed ?samples:options.mc_samples
          ~jobs:options.jobs ?ns:options.mc_sizes ?ci_width:options.mc_ci_width
          ?tols:options.tols ?compiled ?trace ~vocab ~kb query
      with Invalid_argument why ->
        Answer.make ~engine:"mc" (Answer.Not_applicable why))
  in
  selected trace (Printf.sprintf "forced --engine %s" (id_name eid)) answer
