(** The asymptotic engine for unary knowledge bases: degrees of belief
    via maximum entropy (Section 6).

    By the concentration phenomenon, as [N → ∞] almost all KB-worlds
    lie near the maximum-entropy point of [S(KB)], so queries about
    named individuals are answered from the atom distribution at that
    point (constants are asymptotically independent given the
    proportions), and closed statistical / quantified queries get
    degree of belief 1 or 0 according to their truth at the point. The
    [τ̄ → 0] limit is taken numerically over a shrinking schedule with
    least-squares intercept extrapolation.

    Disjunctive KBs are handled through the same concentration
    argument: disjuncts of maximal entropy dominate the world count;
    when every dominant disjunct yields the same belief, that is the
    answer (validating the Or rule — e.g. Example 5.4's broken arm). *)

open Rw_logic

val default_tols : Tolerance.t list
(** Alias of {!Rw_compile.Compiled_kb.default_schedule}: the engine
    walks exactly the schedule a compiled artifact pre-solves. *)

exception Outside_fragment of string
(** KB or query outside the unary fragment; caught by {!estimate}. *)

val belief_at :
  ?compiled:Rw_compile.Compiled_kb.t ->
  kb:Syntax.formula ->
  query:Syntax.formula ->
  Tolerance.t ->
  float option
(** The degree of belief at one fixed tolerance vector; [None] when
    conditioning is impossible there.
    @raise Outside_fragment outside the unary fragment.
    @raise Rw_unary.Solver.Infeasible when the KB is inconsistent at
    this tolerance. *)

val estimate :
  ?tols:Tolerance.t list ->
  ?compiled:Rw_compile.Compiled_kb.t ->
  ?trace:Rw_trace.Trace.t ->
  kb:Syntax.formula ->
  Syntax.formula ->
  Answer.t
(** The [τ̄ → 0] limit over the schedule. Never raises: fragment
    violations yield [Not_applicable]; infeasibility along the whole
    schedule yields [Inconsistent]; non-convergence yields [No_limit]
    or a widened interval. Pass structured tolerance vectors (with
    per-index powers) to probe default priorities — Section 5.3's
    non-robustness ablation. [?trace] records the entropy-maximum
    profile (entropy, binding-constraint count, per-atom masses), the
    per-tolerance beliefs, and the extrapolation verdict. [?compiled]
    reuses a matching artifact's pre-solved maxent points; answers are
    identical with or without it. *)
