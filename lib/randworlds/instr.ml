(** Engine instrumentation — see the interface. *)

type entry = { engine : string; count : int; seconds : float }

type cell = { mutable n : int; mutable secs : float }

let table : (string, cell) Hashtbl.t = Hashtbl.create 16

let now () = Unix.gettimeofday ()

let record ~engine ~seconds =
  let cell =
    match Hashtbl.find_opt table engine with
    | Some c -> c
    | None ->
      let c = { n = 0; secs = 0.0 } in
      Hashtbl.add table engine c;
      c
  in
  cell.n <- cell.n + 1;
  cell.secs <- cell.secs +. seconds

let snapshot () =
  Hashtbl.fold
    (fun engine c acc -> { engine; count = c.n; seconds = c.secs } :: acc)
    table []
  |> List.sort (fun a b -> Stdlib.compare a.engine b.engine)

let reset () = Hashtbl.reset table
