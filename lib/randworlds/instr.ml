(** Engine instrumentation — see the interface.

    Counters are sharded per domain: [record] only ever touches the
    calling domain's own table (under that table's uncontended mutex),
    and [snapshot]/[reset] walk a registry of every shard ever created.
    A shard outlives its domain — counts recorded on a pool worker
    survive the pool — so sums over [snapshot] are exact whatever the
    interleaving. *)

type entry = { engine : string; count : int; seconds : float }

type cell = { mutable n : int; mutable secs : float }

(* One shard per domain that has recorded anything. The shard mutex
   orders [record] against [snapshot]/[reset]; [record] never takes the
   registry mutex, so the hot path costs one domain-local read and one
   uncontended lock. *)
type shard = { m : Mutex.t; tbl : (string, cell) Hashtbl.t }

let registry_m = Mutex.create ()
let registry : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { m = Mutex.create (); tbl = Hashtbl.create 16 } in
      Mutex.protect registry_m (fun () -> registry := s :: !registry);
      s)

let now () = Unix.gettimeofday ()

let record ~engine ~seconds =
  let s = Domain.DLS.get shard_key in
  Mutex.protect s.m (fun () ->
      let cell =
        match Hashtbl.find_opt s.tbl engine with
        | Some c -> c
        | None ->
          let c = { n = 0; secs = 0.0 } in
          Hashtbl.add s.tbl engine c;
          c
      in
      cell.n <- cell.n + 1;
      cell.secs <- cell.secs +. seconds)

let shards () = Mutex.protect registry_m (fun () -> !registry)

let snapshot () =
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Mutex.protect s.m (fun () ->
          Hashtbl.iter
            (fun engine c ->
              match Hashtbl.find_opt merged engine with
              | Some m ->
                m.n <- m.n + c.n;
                m.secs <- m.secs +. c.secs
              | None -> Hashtbl.add merged engine { n = c.n; secs = c.secs })
            s.tbl))
    (shards ());
  Hashtbl.fold
    (fun engine c acc -> { engine; count = c.n; seconds = c.secs } :: acc)
    merged []
  |> List.sort (fun a b -> Stdlib.compare a.engine b.engine)

let reset () =
  List.iter (fun s -> Mutex.protect s.m (fun () -> Hashtbl.reset s.tbl)) (shards ())
