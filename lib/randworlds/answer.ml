(** Results of a degree-of-belief computation.

    The random-worlds degree of belief [Pr_∞(φ | KB)] is a double limit
    that may fail to exist (Definition 4.3); theorems sometimes pin it
    only to an interval (Theorems 5.6, 5.23); and any given engine may
    simply not apply to a given KB. The [result] type keeps those four
    outcomes distinct so callers can dispatch honestly. *)

open Rw_prelude

type result =
  | Point of float  (** the limit exists and equals this value *)
  | Within of Interval.t
      (** the limit (or its limsup/liminf) provably lies in this
          interval *)
  | No_limit of string
      (** the limit does not exist; the string explains why (e.g.
          conflicting defaults of unstated relative strength) *)
  | Inconsistent
      (** the KB is not eventually consistent — no degrees of belief *)
  | Not_applicable of string
      (** this engine cannot handle the KB/query; try another *)

(** An answer bundles the result with provenance. *)
type t = {
  result : result;
  engine : string;  (** which engine produced it *)
  notes : string list;  (** diagnostics: schedules used, residuals, … *)
}

let make ?(notes = []) ~engine result = { result; engine; notes }

(** [add_notes a notes] appends diagnostics — e.g. the Monte-Carlo
    evidence record, or a cross-engine agreement check — without
    touching the verdict. *)
let add_notes a notes = { a with notes = a.notes @ notes }

(** [point_value a] extracts a point value when the result is a point
    (or a degenerate interval). *)
let point_value a =
  match a.result with
  | Point v -> Some v
  | Within i when Interval.is_point i -> Some (Interval.lo i)
  | Within _ | No_limit _ | Inconsistent | Not_applicable _ -> None

(** [definitive a] — did the engine reach a verdict (point, interval,
    no-limit, inconsistent), as opposed to declining? *)
let definitive a =
  match a.result with Not_applicable _ -> false | _ -> true

let pp_result ppf = function
  | Point v -> Fmt.pf ppf "%a" Floats.pp_prob v
  | Within i -> Fmt.pf ppf "∈ %a" Interval.pp i
  | No_limit why -> Fmt.pf ppf "no limit (%s)" why
  | Inconsistent -> Fmt.string ppf "KB not eventually consistent"
  | Not_applicable why -> Fmt.pf ppf "n/a (%s)" why

let pp ppf a = Fmt.pf ppf "%a [%s]" pp_result a.result a.engine
