(** The Monte-Carlo engine: [Pr_N^τ̄(φ | KB)] by uniform world
    sampling ({!Rw_mc}), the sixth engine.

    Same definition as the literal engine — a ratio over [W_N(Φ)] —
    but estimated instead of enumerated, so it reaches domain sizes
    orders of magnitude beyond [max_log10_worlds] on any vocabulary.
    Every answer carries its evidence (samples, KB hit rate, effective
    sample size, seed, wall time) in its notes, and its result is the
    95% confidence interval, never a bare point. *)

open Rw_logic
open Rw_prelude

let default_seed = 1

(** [pr_n ?config ?pool ?tilt_solve ?seed ~vocab ~n ~tol ~kb query] —
    one Monte-Carlo estimate at a single [(N, τ̄)], exposed for benches
    and tests. *)
let pr_n ?config ?pool ?tilt_solve ?(seed = default_seed) ~vocab ~n ~tol ~kb
    query =
  Rw_mc.Estimator.estimate ?config ?pool ?tilt_solve ~seed ~vocab ~n ~tol ~kb
    query

let config ~samples ~ci_width =
  {
    Rw_mc.Estimator.default_config with
    Rw_mc.Estimator.max_samples =
      Option.value samples
        ~default:Rw_mc.Estimator.default_config.Rw_mc.Estimator.max_samples;
    target_halfwidth =
      Option.value ci_width
        ~default:
          Rw_mc.Estimator.default_config.Rw_mc.Estimator.target_halfwidth;
  }

let note_of ~tol ~outcome =
  Fmt.str "mc %a: %a" Tolerance.pp tol Rw_mc.Estimator.pp_outcome outcome

(** [estimate ?seed ?samples ?ci_width ?ns ?tols ~vocab ~kb query]
    estimates the double limit from an [(N, τ̄)] grid, like the enum
    engine but by sampling. For each tolerance in the shrinking
    schedule, sample at the largest domain size whose rejection rate
    is survivable — stepping down in [N] on starvation, since sharper
    constraints concentrate the KB-worlds into an exponentially
    thinner slice as [N] grows (only unary KBs get the stratified
    rescue). The answer is the confidence interval at the smallest
    tolerance that produced an estimate; the evidence for every grid
    point attempted, including starved ones, is in the notes. *)
let estimate ?(seed = default_seed) ?samples ?ci_width ?(jobs = 1)
    ?(ns = [ 8; 16; 32 ]) ?tols ?compiled ?trace ~vocab ~kb query =
  Rw_trace.Trace.span trace "mc" @@ fun () ->
  let tols =
    match tols with
    | Some ts -> ts
    | None -> Tolerance.schedule ~steps:2 (Tolerance.uniform 0.2)
  in
  let ns_desc = List.sort_uniq (fun a b -> Stdlib.compare b a) ns in
  let cfg = config ~samples ~ci_width in
  (* A compiled artifact supplies the memoised maxent solve behind the
     stratified rescue's importance tilt (the tilt is a function of the
     KB and tolerance only). The proposal is identical, so the sample
     stream — and the answer — do not change. *)
  let tilt_solve =
    Option.map
      (fun c parts tol -> Rw_compile.Compiled_kb.solve c parts tol)
      compiled
  in
  (* Split one master generator per grid point so points are
     independent but jointly reproducible from the one seed. *)
  let master = Rw_mc.Prng.create seed in
  let grid pool =
    List.map
      (fun tol ->
        let rec descend = function
          | [] -> []
          | n :: rest ->
            let seed = Int64.to_int (Rw_mc.Prng.bits64 master) land 0x3FFFFFFF in
            let o =
              pr_n ~config:cfg ?pool ?tilt_solve ~seed ~vocab ~n ~tol ~kb query
            in
            let attempt = (tol, o) in
            (match o with
            | Rw_mc.Estimator.Estimate _ -> [ attempt ]
            | Rw_mc.Estimator.Starved _ -> attempt :: descend rest)
        in
        descend ns_desc)
      tols
  in
  let outcomes =
    (* Chunk seeding makes the answer jobs-invariant, so the pool is
       pure mechanism. Under a parallel batch this engine is already
       inside a pool task; nested fan-out is refused, so run the grid
       sequentially there. *)
    if jobs > 1 && not (Rw_pool.Pool.on_worker ()) then
      Rw_pool.Pool.run ~jobs (fun p -> grid (Some p))
    else grid None
  in
  let outcomes = List.concat outcomes in
  (* Trace facts are emitted here, after the (deterministic, chunk-order)
     merge, so the trace is jobs-invariant. Wall-clock seconds are
     deliberately excluded from the facts for the same reason. *)
  (match trace with
  | None -> ()
  | Some tr ->
    List.iter
      (fun (tol, o) ->
        let stats_fields (s : Rw_mc.Estimator.stats) =
          [ ("tol", Rw_trace.Trace.S (Fmt.str "%a" Tolerance.pp tol));
            ("n", Rw_trace.Trace.I s.Rw_mc.Estimator.n);
            ("seed", Rw_trace.Trace.I s.Rw_mc.Estimator.seed);
            ("samples", Rw_trace.Trace.I s.Rw_mc.Estimator.samples);
            ("kb_hits", Rw_trace.Trace.I s.Rw_mc.Estimator.kb_hits);
            ("stratified", Rw_trace.Trace.B s.Rw_mc.Estimator.stratified)
          ]
        in
        match o with
        | Rw_mc.Estimator.Estimate { mean; ci; stats } ->
          Rw_trace.Trace.fact tr "mc-point"
            (stats_fields stats
            @ [ ("mean", Rw_trace.Trace.F mean);
                ("ci_lo", Rw_trace.Trace.F (Interval.lo ci));
                ("ci_hi", Rw_trace.Trace.F (Interval.hi ci))
              ])
        | Rw_mc.Estimator.Starved stats ->
          Rw_trace.Trace.fact tr "mc-point"
            (stats_fields stats @ [ ("starved", Rw_trace.Trace.B true) ]))
      outcomes);
  let notes = List.map (fun (tol, o) -> note_of ~tol ~outcome:o) outcomes in
  let estimates =
    List.filter_map
      (fun (_, o) ->
        match o with
        | Rw_mc.Estimator.Estimate { ci; stats; _ } ->
          Some (ci, stats.Rw_mc.Estimator.n)
        | Rw_mc.Estimator.Starved _ -> None)
      outcomes
  in
  let emit tag fields =
    match trace with
    | None -> ()
    | Some tr -> Rw_trace.Trace.fact tr tag fields
  in
  match List.rev estimates with
  | (ci, n) :: _ ->
    (* The grid's answer is a single finite-N confidence interval, but
       it is reported as an estimate of the N → ∞ limit. At size [N]
       proportions only exist in multiples of 1/N, so the conditioned
       world-set is distorted by up to that resolution (near-degenerate
       statistics are the worst case: whole profile ranges fall outside
       the tolerance band and the conditional shifts by O(1/N)). An
       honest interval for the limit carries that finite-size slack on
       top of the sampling error; the raw CI stays in the notes. *)
    let slack = 1.0 /. float_of_int n in
    let reported = Interval.clamp01 (Interval.widen ci slack) in
    emit "limit"
      [ ("verdict", Rw_trace.Trace.S "ci-at-smallest-tolerance");
        ("n", Rw_trace.Trace.I n);
        ("finite_size_slack", Rw_trace.Trace.F slack);
        ("ci_lo", Rw_trace.Trace.F (Interval.lo reported));
        ("ci_hi", Rw_trace.Trace.F (Interval.hi reported))
      ];
    Answer.make
      ~notes:
        (notes
        @ [ Fmt.str
              "mc: interval widened by 1/N = %g finite-size slack (sampled at \
               N=%d; the limit answer inherits the proportion resolution)"
              slack n
          ])
      ~engine:"mc" (Answer.Within reported)
  | [] ->
    (* Rejection starved on every tolerance: report honestly with a
       widened (vacuous) interval rather than guessing or hanging. *)
    emit "limit" [ ("verdict", Rw_trace.Trace.S "starved-vacuous") ];
    Answer.make
      ~notes:(notes @ [ "mc: no KB hits within budget; interval widened to [0,1]" ])
      ~engine:"mc" (Answer.Within Interval.vacuous)
