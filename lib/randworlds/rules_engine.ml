(** The syntactic rule engine: direct application of the paper's
    theorems when their hypotheses hold.

    - {b Rule A} (Theorem 5.6 / Corollary 5.7): exact reference class.
      If the KB splits as [ψ(c̄) ∧ KB′] with the query constants
      appearing nowhere in [KB′], and [KB′] contains a statistic for
      [||φ(x̄) | ψ(x̄)||], that statistic is the degree of belief.
      Purely syntactic (matching modulo alpha/AC), so it applies to
      arbitrary-arity predicates, quantified classes, and nested
      defaults.
    - {b Rule B} (Theorem 5.16): unique minimal reference class with
      irrelevant extra information, for unary boolean classes.
    - {b Rule C} (Theorem 5.23): Kyburg's strength rule along a chain
      of reference classes.
    - {b Rule D} (Theorem 5.26): Dempster's rule of combination for
      essentially-disjoint reference classes.

    Each rule returns a sound interval (or point); the engine
    intersects everything it can prove. A failed hypothesis check makes
    a rule silently inapplicable — never an unsound answer. *)

open Rw_prelude
open Rw_logic
open Syntax
module Trace = Rw_trace.Trace

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

(* Replace constant symbols by variables. *)
let rec const_to_var_term mapping = function
  | Var x -> Var x
  | Fn (c, []) as t -> (
    match List.assoc_opt c mapping with Some x -> Var x | None -> t)
  | Fn (f, args) -> Fn (f, List.map (const_to_var_term mapping) args)

let rec const_to_var mapping f =
  match f with
  | True | False -> f
  | Pred (p, args) -> Pred (p, List.map (const_to_var_term mapping) args)
  | Eq (t1, t2) -> Eq (const_to_var_term mapping t1, const_to_var_term mapping t2)
  | Not g -> Not (const_to_var mapping g)
  | And (g, h) -> And (const_to_var mapping g, const_to_var mapping h)
  | Or (g, h) -> Or (const_to_var mapping g, const_to_var mapping h)
  | Implies (g, h) -> Implies (const_to_var mapping g, const_to_var mapping h)
  | Iff (g, h) -> Iff (const_to_var mapping g, const_to_var mapping h)
  | Forall (x, g) -> Forall (x, const_to_var mapping g)
  | Exists (x, g) -> Exists (x, const_to_var mapping g)
  | Compare (z1, c, z2) ->
    Compare (const_to_var_prop mapping z1, c, const_to_var_prop mapping z2)

and const_to_var_prop mapping = function
  | Num x -> Num x
  | Prop (f, xs) -> Prop (const_to_var mapping f, xs)
  | Cond (f, g, xs) -> Cond (const_to_var mapping f, const_to_var mapping g, xs)
  | Add (z1, z2) -> Add (const_to_var_prop mapping z1, const_to_var_prop mapping z2)
  | Mul (z1, z2) -> Mul (const_to_var_prop mapping z1, const_to_var_prop mapping z2)

(* Fresh variable names for abstracted constants, avoiding everything
   in sight. *)
let abstraction_mapping avoid consts =
  let avoid = ref avoid in
  List.map
    (fun c ->
      let x = Syntax.fresh_var !avoid ("x" ^ String.lowercase_ascii c) in
      avoid := Syntax.Sset.add x !avoid;
      (c, x))
    consts

(* The statistical-conjunct machinery lives in {!Rw_compile.Stat} so a
   compiled KB can pre-index it once per KB; re-exported here (with the
   record fields) to keep the rule code reading naturally. *)
module Cstat = Rw_compile.Stat

type stat = Cstat.t = {
  target : formula;  (** φ of [||φ | ψ||] *)
  ref_class : formula;  (** ψ *)
  subscript : string list;
  bounds : Interval.t;
  tol_index : int;
}

let stat_of_conjunct = Cstat.of_conjunct
let complement_stat = Cstat.complement
let with_complements = Cstat.with_complements
let merge_stats = Cstat.merge

(* ------------------------------------------------------------------ *)
(* Eventual-inconsistency pre-checks                                  *)
(* ------------------------------------------------------------------ *)

(* Every theorem below presupposes an (eventually) consistent KB —
   Pr_N(φ | KB) has a vacuous denominator otherwise, and matching a
   statistic against an inconsistent KB yields confident nonsense
   (e.g. answering 0 from ||P(x)|P(x)|| ≈ 0 ∧ P(D), a KB with no
   worlds once τ < 1). Two cheap sound checks run first; either one
   firing makes the whole inference [Inconsistent]. Both are
   query-independent, so they live in {!Rw_compile.Compiled_kb} and a
   compiled artifact carries their results as booleans. *)

let ground_contradiction = Rw_compile.Compiled_kb.ground_contradiction
let degenerate_self_conditional = Rw_compile.Compiled_kb.degenerate_self_conditional

(* ------------------------------------------------------------------ *)
(* Rule A: Theorem 5.6                                                *)
(* ------------------------------------------------------------------ *)

(* Non-empty subsets of a list, smaller lists later (prefer abstracting
   all query constants first — the most specific reading). *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let tails = subsets rest in
    List.map (fun tl -> x :: tl) tails @ tails

(* [indexed] pairs each KB conjunct with its pre-recognised statistical
   reading (a compiled KB's {!Rw_compile.Compiled_kb.stat_index}), so
   the candidate statistics come from a partition of the index instead
   of re-parsing every conjunct per query. *)
let rule_a ~trace ~indexed ~query =
  let query_consts = Syntax.constants query in
  if query_consts = [] then None
  else begin
    let avoid =
      List.fold_left
        (fun acc (f, _) -> Syntax.Sset.union acc (Syntax.all_vars_formula f))
        (Syntax.all_vars_formula query) indexed
    in
    let candidates =
      List.filter (fun s -> s <> []) (subsets query_consts)
    in
    let try_subset cs =
      let mentions (f, _) =
        List.exists (fun c -> Syntax.mentions_constant c f) cs
      in
      let psi_pairs, kb' = List.partition mentions indexed in
      if psi_pairs = [] then None
      else begin
        let mapping = abstraction_mapping avoid cs in
        let xs = List.map snd mapping in
        let phi_x = const_to_var mapping query in
        let psi_x = const_to_var mapping (conj (List.map fst psi_pairs)) in
        (* Hypotheses: the abstracted constants appear nowhere else. *)
        if
          List.exists
            (fun (f, _) ->
              List.exists (fun c -> Syntax.mentions_constant c f) cs)
            kb'
        then None
        else begin
          let pattern = Cond (phi_x, psi_x, xs) in
          let stats = with_complements (List.filter_map snd kb') in
          let matching =
            List.filter
              (fun s ->
                Unify.prop_alpha_ac_equal pattern
                  (Cond (s.target, s.ref_class, s.subscript)))
              stats
          in
          match merge_stats matching with
          | s :: _ ->
            (match trace with
            | None -> ()
            | Some tr ->
              Trace.fact tr "theorem"
                [
                  ("id", Trace.S "5.6");
                  ("name", Trace.S "exact reference class");
                  ("statistic", Trace.S (Pretty.proportion_to_string pattern));
                  ( "abstracted-constants",
                    Trace.S (String.concat "," cs) );
                  ( "precondition",
                    Trace.S
                      "the query constants occur nowhere in the rest of the KB"
                  );
                  ("bounds", Trace.S (Fmt.str "%a" Interval.pp s.bounds));
                ]);
            Some s.bounds
          | [] -> None
        end
      end
    in
    List.fold_left
      (fun acc cs -> match acc with Some _ -> acc | None -> try_subset cs)
      None candidates
  end

(* ------------------------------------------------------------------ *)
(* Unary scaffolding shared by rules B, C, D                          *)
(* ------------------------------------------------------------------ *)

type unary_context = {
  universe : Atoms.universe;
  theory : Atoms.Set.t;  (** atoms allowed by the universal facts *)
  known : formula;  (** everything the KB says about the query constant,
                        abstracted to the variable ["x"] *)
  stats : stat list;  (** statistics whose target matches the query *)
  query_var : string;
}

(* Build the unary context for a single-constant query, enforcing
   Theorem 5.16's condition (c): the query's predicate symbols occur in
   the KB only as targets of the matched statistics. Like {!rule_a},
   consumes the pre-indexed conjunct list. *)
let unary_context ~indexed ~query =
  let kb_conjuncts = List.map fst indexed in
  match Syntax.constants query with
  | [ c ] -> begin
    let all_preds =
      List.concat_map
        (fun f ->
          let ps, _ = Syntax.symbols f in
          List.filter_map (fun (p, a) -> if a = 1 then Some p else None) ps)
        (query :: kb_conjuncts)
    in
    (* Everything must be unary & equality-free for the atom reasoner. *)
    let ok_fragment =
      List.for_all
        (fun f -> Syntax.is_unary_vocab f && not (Syntax.mentions_equality f))
        (query :: kb_conjuncts)
    in
    if (not ok_fragment) || List.length (Listx.sort_uniq_strings all_preds) > Atoms.max_preds
    then None
    else begin
      let universe = Atoms.universe all_preds in
      let x = "x_rw" in
      let mapping = [ (c, x) ] in
      let phi_x = const_to_var mapping query in
      if not (Atoms.is_boolean_over universe ~subject:(Var x) phi_x) then None
      else begin
        let query_preds =
          let ps, _ = Syntax.symbols query in
          List.map fst ps
        in
        let matches_query s =
          Unify.prop_alpha_ac_equal
            (Prop (s.target, s.subscript))
            (Prop (phi_x, [ x ]))
        in
        let stats, rest =
          List.partition_map
            (fun (f, st) ->
              match st with
              | Some s
                when (not (Syntax.mentions_constant c f))
                     && (matches_query s || matches_query (complement_stat s)) ->
                Left (if matches_query s then s else complement_stat s)
              | _ -> Right f)
            indexed
        in
        if stats = [] then None
        else begin
          (* Condition (c): the query's symbols appear nowhere in the
             remaining conjuncts nor in any reference class. *)
          let clean f =
            let ps, _ = Syntax.symbols f in
            not (List.exists (fun (p, _) -> List.mem p query_preds) ps)
          in
          if not (List.for_all clean rest && List.for_all (fun s -> clean s.ref_class) stats)
          then None
          else begin
            let universals, others =
              List.partition_map
                (fun f ->
                  match f with
                  | Forall (y, body) when Atoms.is_boolean_over universe ~subject:(Var y) body ->
                    Left (Forall (y, body))
                  | _ -> Right f)
                rest
            in
            (* Boolean facts about c feed the entailment checks; other
               conjuncts (statistics about unrelated predicates,
               overlap-smallness assertions, …) are permitted by the
               theorem — they already passed the condition-(c) symbol
               check — and are simply not used for entailment, which is
               conservative. Conjuncts that mention c in a non-boolean
               way would make "everything known about c" ambiguous, so
               those do fail the hypotheses. *)
            let fact_formulas =
              List.filter_map
                (fun f ->
                  if
                    Syntax.constants f = [ c ]
                    && Atoms.is_boolean_over universe ~subject:(Fn (c, [])) f
                  then Some (const_to_var mapping f)
                  else None)
                others
            in
            let mentions_c_non_boolean =
              List.exists
                (fun f ->
                  Syntax.mentions_constant c f
                  && not
                       (Syntax.constants f = [ c ]
                       && Atoms.is_boolean_over universe ~subject:(Fn (c, [])) f))
                others
            in
            if mentions_c_non_boolean then None
            else begin
              let known = conj fact_formulas in
              (* Reference classes must be boolean over the subscript. *)
              let stats_ok =
                List.for_all
                  (fun s ->
                    match s.subscript with
                    | [ y ] -> Atoms.is_boolean_over universe ~subject:(Var y) s.ref_class
                    | _ -> false)
                  stats
              in
              if not stats_ok then None
              else begin
                let theory = Atoms.theory universe universals in
                (* Rename each stat's class to the canonical variable. *)
                let stats =
                  List.map
                    (fun s ->
                      match s.subscript with
                      | [ y ] ->
                        { s with
                          ref_class = subst [ (y, Var x) ] s.ref_class;
                          target = subst [ (y, Var x) ] s.target;
                          subscript = [ x ];
                        }
                      | _ -> s)
                    stats
                in
                Some { universe; theory; known; stats = merge_stats stats; query_var = x }
              end
            end
          end
        end
      end
    end
  end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule B: Theorem 5.16 (minimal class, irrelevance)                  *)
(* ------------------------------------------------------------------ *)

let rule_b ~trace ctx =
  let { universe = u; theory; known; stats; query_var = x } = ctx in
  (* ψ0 must be entailed by the known facts and minimal among all
     reference classes. *)
  let is_minimal s0 =
    Atoms.entails ~theory u x known s0.ref_class
    && List.for_all
         (fun s ->
           Unify.alpha_ac_equal s.ref_class s0.ref_class
           || Atoms.entails ~theory u x s0.ref_class s.ref_class
           || Atoms.disjoint ~theory u x s0.ref_class s.ref_class)
         stats
  in
  (match trace with
  | None -> ()
  | Some tr ->
    List.iter
      (fun s ->
        Trace.fact tr "ref-class"
          [
            ("class", Trace.S (Pretty.to_string s.ref_class));
            ("bounds", Trace.S (Fmt.str "%a" Interval.pp s.bounds));
            ("role", Trace.S "candidate");
          ])
      stats);
  match List.find_opt is_minimal stats with
  | Some s0 ->
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.fact tr "ref-class"
        [
          ("class", Trace.S (Pretty.to_string s0.ref_class));
          ("role", Trace.S "winner");
          ( "reason",
            Trace.S
              "most specific: entailed by everything known about the \
               individual, and every competing class is a superset or \
               disjoint" );
        ];
      Trace.fact tr "theorem"
        [
          ("id", Trace.S "5.16");
          ("name", Trace.S "minimal reference class");
          ("known", Trace.S (Pretty.to_string known));
          ("class", Trace.S (Pretty.to_string s0.ref_class));
          ("bounds", Trace.S (Fmt.str "%a" Interval.pp s0.bounds));
        ]);
    Some s0.bounds
  | None -> None

(* ------------------------------------------------------------------ *)
(* Rule C: Theorem 5.23 (strength rule on a chain)                    *)
(* ------------------------------------------------------------------ *)

let rule_c ~trace ctx =
  let { universe = u; theory; known; stats; query_var = x } = ctx in
  (* Sort classes by extension inclusion; they must form a chain with
     the known facts inside the smallest. *)
  let exts =
    List.map (fun s -> (Atoms.Set.inter (Atoms.extension_var u x s.ref_class) theory, s)) stats
  in
  (* Order classes by extension size; a chain must then be nested. *)
  let sorted =
    List.sort
      (fun (e1, _) (e2, _) ->
        Stdlib.compare
          (List.length (Atoms.members u e1))
          (List.length (Atoms.members u e2)))
      exts
  in
  let rec is_chain = function
    | (e1, _) :: ((e2, _) :: _ as rest) -> Atoms.Set.subset e1 e2 && is_chain rest
    | _ -> true
  in
  match sorted with
  | [] | [ _ ] -> None
  | (e1, _) :: _ as chain when is_chain chain ->
    let known_ext = Atoms.Set.inter (Atoms.extension_var u x known) theory in
    if not (Atoms.Set.subset known_ext e1) then None
    else begin
      (* The strictly tightest interval, if one exists. *)
      let tightest (_, s0) =
        List.for_all
          (fun (_, s) ->
            s == s0
            || (Interval.lo s.bounds < Interval.lo s0.bounds
               && Interval.hi s0.bounds < Interval.hi s.bounds))
          chain
      in
      match List.find_opt tightest chain with
      | Some (_, s0) ->
        (match trace with
        | None -> ()
        | Some tr ->
          List.iter
            (fun (_, s) ->
              Trace.fact tr "ref-class"
                [
                  ("class", Trace.S (Pretty.to_string s.ref_class));
                  ("bounds", Trace.S (Fmt.str "%a" Interval.pp s.bounds));
                  ("role", Trace.S "link");
                ])
            chain;
          Trace.fact tr "theorem"
            [
              ("id", Trace.S "5.23");
              ("name", Trace.S "strength rule");
              ( "precondition",
                Trace.S
                  "the reference classes form a nested chain containing \
                   everything known about the individual" );
              ("class", Trace.S (Pretty.to_string s0.ref_class));
              ("bounds", Trace.S (Fmt.str "%a" Interval.pp s0.bounds));
            ]);
        Some s0.bounds
      | None -> None
    end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule D: Theorem 5.26 (Dempster combination)                        *)
(* ------------------------------------------------------------------ *)

(* Recognise a smallness conjunct asserting the overlap of two classes
   is negligible: ||ψi ∧ ψj||_x ≈ 0, ⪯ small, or ∃!x (ψi ∧ ψj). *)
let overlap_negligible ~kb_conjuncts x psi_i psi_j =
  let overlap = And (psi_i, psi_j) in
  List.exists
    (fun f ->
      match f with
      | Compare (Prop (g, [ y ]), Approx_eq _, Num v)
      | Compare (Prop (g, [ y ]), Approx_le _, Num v) ->
        v <= 0.01 && Unify.alpha_ac_equal (subst [ (y, Var x) ] g) overlap
      | Exists (y, And (body, Forall (_, Implies (_, Eq _)))) ->
        (* the ∃! encoding from [Syntax.exists_unique] *)
        Unify.alpha_ac_equal (subst [ (y, Var x) ] body) overlap
      | _ -> false)
    kb_conjuncts

let rule_d ~trace ~kb_conjuncts ctx =
  let { universe = u; theory; known; stats; query_var = x } = ctx in
  if List.length stats < 2 then None
  else begin
    (* Every class must cover the individual, carry a point statistic,
       and be pairwise essentially disjoint. *)
    let ok_class s =
      Interval.is_point s.bounds && Atoms.entails ~theory u x known s.ref_class
    in
    let rec pairwise = function
      | s :: rest ->
        List.for_all
          (fun t -> overlap_negligible ~kb_conjuncts x s.ref_class t.ref_class)
          rest
        && pairwise rest
      | [] -> true
    in
    if List.for_all ok_class stats && pairwise stats then begin
      let alphas = List.map (fun s -> Interval.lo s.bounds) stats in
      (match trace with
      | None -> ()
      | Some tr ->
        Trace.fact tr "theorem"
          [
            ("id", Trace.S "5.26");
            ("name", Trace.S "Dempster combination");
            ( "classes",
              Trace.S
                (String.concat " ; "
                   (List.map (fun s -> Pretty.to_string s.ref_class) stats)) );
            ( "precondition",
              Trace.S
                "each class covers the individual with a point statistic, \
                 and every pair is essentially disjoint" );
            ( "strengths",
              Trace.S
                (String.concat ","
                   (List.map (fun a -> Printf.sprintf "%g" a) alphas)) );
          ]);
      match Dempster.combine alphas with
      | v -> Some (`Point v)
      | exception Dempster.Conflicting_certainties ->
        (* Conflicting hard defaults: with a shared tolerance the limit
           is 1/2 (Section 5.3); with independent tolerances there is
           no limit. *)
        let indices = List.map (fun s -> s.tol_index) stats in
        if List.length (List.sort_uniq Stdlib.compare indices) = 1 then
          Some (`Point 0.5)
        else Some `No_limit
    end
    else None
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

(** [infer ?compiled ?trace ~kb query] applies every rule whose
    hypotheses hold and intersects the sound conclusions. [compiled]
    (an artifact for this exact KB) supplies the pre-split conjuncts,
    the statistical index, and the pre-evaluated inconsistency checks;
    inference is identical with or without it. *)
let infer ?compiled ?trace ~kb query =
  Trace.span trace "rules" @@ fun () ->
  let module C = Rw_compile.Compiled_kb in
  let indexed, ground_bad, degenerate_bad =
    match compiled with
    | Some c when C.matches c kb ->
      (C.stat_index c, C.ground_inconsistent c, C.degenerate_inconsistent c)
    | _ ->
      let conjuncts = Rw_unary.Analysis.split_conjuncts kb in
      let indexed = List.map (fun f -> (f, stat_of_conjunct f)) conjuncts in
      ( indexed,
        ground_contradiction conjuncts,
        degenerate_self_conditional indexed )
  in
  let kb_conjuncts = List.map fst indexed in
  if ground_bad then begin
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.fact tr "inconsistency"
        [ ("reason", Trace.S "complementary pair of ground literals") ]);
    Answer.make
      ~notes:[ "ground facts contain a complementary literal pair" ]
      ~engine:"rules" Answer.Inconsistent
  end
  else if degenerate_bad then begin
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.fact tr "inconsistency"
        [
          ( "reason",
            Trace.S
              "self-conditional statistic forces its class empty, but a \
               ground fact populates it" );
        ]);
    Answer.make
      ~notes:
        [ "self-conditional statistic forces its class empty, but a \
           ground fact populates it" ]
      ~engine:"rules" Answer.Inconsistent
  end
  else begin
  let answers = ref [] in
  let note = ref [] in
  try
  (match rule_a ~trace ~indexed ~query with
  | Some bounds ->
    answers := bounds :: !answers;
    note := "Theorem 5.6 (exact reference class)" :: !note
  | None -> ());
  (match unary_context ~indexed ~query with
  | None -> ()
  | Some ctx ->
    (match rule_b ~trace ctx with
    | Some bounds ->
      answers := bounds :: !answers;
      note := "Theorem 5.16 (minimal class)" :: !note
    | None -> ());
    (match rule_c ~trace ctx with
    | Some bounds ->
      answers := bounds :: !answers;
      note := "Theorem 5.23 (strength rule)" :: !note
    | None -> ());
    (match rule_d ~trace ~kb_conjuncts ctx with
    | Some (`Point v) ->
      answers := Interval.point v :: !answers;
      note := "Theorem 5.26 (Dempster combination)" :: !note
    | Some `No_limit -> raise Exit
    | None -> ()));
  match List.fold_left
          (fun acc b ->
            match acc with
            | None -> Some b
            | Some a -> (
              match Interval.inter a b with Some i -> Some i | None -> Some a))
          None !answers
  with
  | Some i when Interval.is_point i ->
    Answer.make ~notes:!note ~engine:"rules" (Answer.Point (Interval.lo i))
  | Some i -> Answer.make ~notes:!note ~engine:"rules" (Answer.Within i)
  | None ->
    Answer.make ~engine:"rules"
      (Answer.Not_applicable "no theorem's hypotheses matched")
  with Exit ->
    Answer.make
      ~notes:("Theorem 5.26: conflicting hard defaults" :: !note)
      ~engine:"rules"
      (Answer.No_limit "conflicting defaults with independent tolerances")
  end
