(** The top-level degree-of-belief engine: dispatch across the four
    computation strategies, most exact/cheapest first.

    1. {b rules} — syntactic theorems (sound intervals, any arity);
    2. {b independence decomposition} — Theorem 5.27 splits queries
       over disjoint sub-vocabularies into products;
    3. {b maxent} — asymptotic values for unary KBs;
    4. {b unary} — exact finite-[N] counting with extrapolation;
    5. {b enum} — literal world enumeration at small [N];
    6. {b mc} — Monte-Carlo world sampling with confidence intervals,
       engaged when the enumeration guard is blown (and as an
       independent statistical cross-check where enum applies).

    A rule-engine interval is refined by the maxent point when the two
    agree; disagreement keeps the provably-sound interval. *)

open Rw_logic

type options = {
  tols : Tolerance.t list option;  (** tolerance schedule override *)
  unary_sizes : int list option;  (** domain sizes for the unary engine *)
  enum_sizes : int list option;  (** domain sizes for enumeration *)
  use_enum : bool;  (** allow the (expensive) literal engine *)
  mc_seed : int;  (** PRNG seed for the Monte-Carlo engine *)
  mc_samples : int option;  (** Monte-Carlo sample budget override *)
  mc_ci_width : float option;  (** Monte-Carlo target CI half-width *)
  mc_sizes : int list option;  (** domain sizes for the Monte-Carlo engine *)
  mc_cross_check : bool;
      (** statistically cross-check exact enum points by sampling *)
  jobs : int;
      (** domain-pool width for the Monte-Carlo sampler (default 1).
          Answers are jobs-invariant by construction — per-chunk
          stream splitting, see {!Mc_engine.estimate} — so this knob
          never enters the service's cache fingerprint. *)
}

val default_options : options

val independence_split :
  kb:Syntax.formula ->
  Syntax.formula ->
  (Syntax.formula * Syntax.formula) list option
(** Theorem 5.27: split query and KB into components over disjoint
    sub-vocabularies sharing at most the single query constant.
    Returns [(query_part, kb_part)] pairs, or [None] when no split
    exists. Exposed for tests. *)

val infer :
  ?options:options ->
  ?compiled:Rw_compile.Compiled_kb.t ->
  ?trace:Rw_trace.Trace.t ->
  kb:Syntax.formula ->
  Syntax.formula ->
  Answer.t
(** Full dispatch. [?trace] records a "dispatch" span containing every
    engine consulted, the refinement and independence-split decisions,
    and a final "engine-selected" fact naming the engine whose answer
    is returned ({!Rw_trace.Trace.selected_engine} reads it back).

    [?compiled] supplies a pre-compiled artifact for [kb]
    ({!Rw_compile.Compiled_kb.compile}): engines reuse its memoised
    maxent solves, profile tables, statistical index and vocabulary
    instead of recomputing them, and the trace gains a "compiled-kb"
    fact (digest, compile time, reused vs fresh maxent point). Answers
    are bit-identical with or without it. An artifact whose KB does
    not structurally match [kb] is ignored. *)

val degree_of_belief :
  ?options:options ->
  ?compiled:Rw_compile.Compiled_kb.t ->
  ?trace:Rw_trace.Trace.t ->
  kb:Syntax.formula ->
  Syntax.formula ->
  Answer.t
(** The headline API: [Pr_∞(query | kb)] by the best applicable
    engine, credited to that engine in {!Instr}. [?trace] and
    [?compiled] as in {!infer}; passing [None] (the default) costs
    nothing on the hot path. *)

(** {2 Per-engine access}

    The differential fuzzer (and [rw query --engine]) interrogate the
    engines individually rather than through {!infer}'s dispatch. *)

type id = Rules | Maxent | Unary | Enum | Mc

val all_ids : id list
(** Dispatch order: most exact/cheapest first. *)

val id_name : id -> string
val id_of_string : string -> id option

val applicable :
  ?options:options -> id -> kb:Syntax.formula -> Syntax.formula -> bool
(** Cheap syntactic test: is [id] {e expected} to speak on this input?
    An applicable engine may still answer [Not_applicable] (e.g. a
    blown enumeration guard at larger [N]); an inapplicable one never
    owes an answer. The fuzz oracles only compare engines that pass
    this predicate. *)

val run :
  ?options:options ->
  ?compiled:Rw_compile.Compiled_kb.t ->
  ?trace:Rw_trace.Trace.t ->
  id ->
  kb:Syntax.formula ->
  Syntax.formula ->
  Answer.t
(** One engine's raw answer, bypassing dispatch. Total: out-of-fragment
    exceptions ([Rw_unary.Profile.Unsupported],
    [Rw_model.Enum.Too_many_worlds], [Invalid_argument]) are mapped to
    [Answer.Not_applicable]. [?trace] records the engine's own facts
    plus an "engine-selected" fact marking the forced choice.
    [?compiled] as in {!infer} — same answer, less recomputation. *)
