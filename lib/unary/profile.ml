(** Exact finite-[N] world counting for unary knowledge bases, by
    aggregation over atom-count profiles.

    For a unary vocabulary, a world of size [N] is determined up to
    isomorphism by (a) how many domain elements realise each atom and
    (b) which atom each named constant falls in; a formula without
    equality cannot distinguish elements of the same atom, so the exact
    count [#worlds_N^τ̄(φ)] is

    [ Σ_{counts} multinomial(N; counts) · Σ_{assignments} Π_c n_{atom(c)} · [profile ⊨ φ] ]

    This engine therefore computes [Pr_N^τ̄(φ | KB)] *exactly* (up to
    float rounding; weights are handled in log space) at domain sizes
    far beyond exhaustive enumeration — hundreds instead of a handful —
    which is what lets us watch the [N → ∞] limit converge.

    Fragment: unary predicates, constants, no equality, no non-constant
    function symbols. *)

open Rw_prelude
open Rw_logic
open Syntax

exception Unsupported of string

type profile = {
  universe : Atoms.universe;
  n : int;
  counts : int array;  (** per-atom element counts, summing to [n] *)
  const_atoms : (string * int) list;  (** atom of each named constant *)
}

(* ------------------------------------------------------------------ *)
(* Evaluation over profiles                                           *)
(* ------------------------------------------------------------------ *)

type prop_value = Value of float | Undefined

(* env maps variables to atom indices. *)
let atom_of_term prof env = function
  | Var x -> (
    match List.assoc_opt x env with
    | Some a -> a
    | None -> raise (Unsupported (Printf.sprintf "unbound variable %s" x)))
  | Fn (c, []) -> (
    match List.assoc_opt c prof.const_atoms with
    | Some a -> a
    | None -> raise (Unsupported (Printf.sprintf "unknown constant %s" c)))
  | Fn (f, _) -> raise (Unsupported (Printf.sprintf "function symbol %s" f))

let rec eval_formula prof tol env = function
  | True -> true
  | False -> false
  | Pred (p, [ t ]) ->
    Atoms.atom_satisfies prof.universe (atom_of_term prof env t) p
  | Pred (p, _) -> raise (Unsupported (Printf.sprintf "non-unary predicate %s" p))
  | Eq _ -> raise (Unsupported "equality (profile engine)")
  | Not f -> not (eval_formula prof tol env f)
  | And (f, g) -> eval_formula prof tol env f && eval_formula prof tol env g
  | Or (f, g) -> eval_formula prof tol env f || eval_formula prof tol env g
  | Implies (f, g) -> (not (eval_formula prof tol env f)) || eval_formula prof tol env g
  | Iff (f, g) -> eval_formula prof tol env f = eval_formula prof tol env g
  | Forall (x, f) ->
    let na = Atoms.num_atoms prof.universe in
    let rec go a =
      a >= na
      || ((prof.counts.(a) = 0 || eval_formula prof tol ((x, a) :: env) f) && go (a + 1))
    in
    go 0
  | Exists (x, f) ->
    let na = Atoms.num_atoms prof.universe in
    let rec go a =
      a < na
      && ((prof.counts.(a) > 0 && eval_formula prof tol ((x, a) :: env) f) || go (a + 1))
    in
    go 0
  | Compare (z1, cmp, z2) -> (
    match (eval_prop prof tol env z1, eval_prop prof tol env z2) with
    | Value a, Value b -> (
      match cmp with
      | Approx_eq i -> Float.abs (a -. b) <= Tolerance.get tol i
      | Approx_le i -> a <= b +. Tolerance.get tol i)
    | Undefined, _ | _, Undefined -> true)

(* Weighted count of tuples over [xs] satisfying [f]: sum over atom
   tuples of the product of atom counts. *)
and tuple_weight prof tol env xs f =
  let na = Atoms.num_atoms prof.universe in
  let rec go xs env acc_weight total =
    match xs with
    | [] -> if eval_formula prof tol env f then total +. acc_weight else total
    | x :: rest ->
      let total = ref total in
      for a = 0 to na - 1 do
        if prof.counts.(a) > 0 then
          total :=
            go rest ((x, a) :: env)
              (acc_weight *. float_of_int prof.counts.(a))
              !total
      done;
      !total
  in
  go xs env 1.0 0.0

and eval_prop prof tol env = function
  | Num x -> Value x
  | Prop (f, xs) ->
    let k = List.length xs in
    let total = float_of_int prof.n ** float_of_int k in
    Value (tuple_weight prof tol env xs f /. total)
  | Cond (f, g, xs) ->
    let wg = tuple_weight prof tol env xs g in
    if wg = 0.0 then Undefined
    else Value (tuple_weight prof tol env xs (And (f, g)) /. wg)
  | Add (z1, z2) -> (
    match (eval_prop prof tol env z1, eval_prop prof tol env z2) with
    | Value a, Value b -> Value (a +. b)
    | _ -> Undefined)
  | Mul (z1, z2) -> (
    match (eval_prop prof tol env z1, eval_prop prof tol env z2) with
    | Value a, Value b -> Value (a *. b)
    | _ -> Undefined)

(** [sat prof tol f] decides satisfaction of a sentence by every world
    with this profile. *)
let sat prof tol f = eval_formula prof tol [] f

(* ------------------------------------------------------------------ *)
(* Precomputed stat-satisfying profile tables                         *)
(* ------------------------------------------------------------------ *)

(* When the KB's statistical conjuncts mention no constants, the set of
   count profiles satisfying them — and each profile's multinomial
   weight — depends only on (parts, n, τ̄), not on the query. A compiled
   KB builds this table once per (n, τ̄) and every query then iterates
   the (usually tiny) satisfying subset instead of all compositions.

   The stored weight deliberately excludes [log_prior]: priors are
   per-query hooks, added at consumption so results stay bit-identical
   with the from-scratch path. *)

type table = {
  t_n : int;  (** domain size the table was enumerated for *)
  rows : (int array * float) array;
      (** satisfying profiles in composition order, with
          [log_multinomial n counts] *)
}

let table_size t = Array.length t.rows

(** [stat_table parts ~n ~tol] enumerates the stat-satisfying profiles,
    or returns [None] when the table would be unsound (statistics
    mentioning constants make satisfaction assignment-dependent) or too
    large to be worth storing ([max_rows], default 200k). *)
let stat_table ?(max_rows = 200_000) (parts : Analysis.parts) ~n ~tol =
  if not (Analysis.fully_supported parts) then None
  else begin
    let u = parts.Analysis.universe in
    let na = Atoms.num_atoms u in
    let stat = Analysis.statistical_formula parts in
    if Syntax.constants stat <> [] then None
    else begin
      let rows = ref [] in
      let count = ref 0 in
      let capped = ref false in
      (try
         Listx.iter_compositions n na (fun counts ->
             Rw_pool.Budget.check ();
             let prof = { universe = u; n; counts; const_atoms = [] } in
             if sat prof tol stat then begin
               incr count;
               if !count > max_rows then begin
                 capped := true;
                 raise Exit
               end;
               (* [iter_compositions] reuses its buffer: copy. *)
               rows :=
                 ( Array.copy counts,
                   Logspace.log_multinomial n (Array.to_list counts) )
                 :: !rows
             end)
       with
      | Exit -> ()
      | Unsupported _ ->
        capped := true);
      if !capped then None
      else Some { t_n = n; rows = Array.of_list (List.rev !rows) }
    end
  end

(* ------------------------------------------------------------------ *)
(* Exact conditional probability at domain size N                     *)
(* ------------------------------------------------------------------ *)

(* Iterate over assignments of the listed constants to atoms with
   non-zero count; call [k assignment log_weight]. *)
let iter_assignments universe counts consts k =
  let na = Atoms.num_atoms universe in
  let rec go consts acc log_w =
    match consts with
    | [] -> k (List.rev acc) log_w
    | c :: rest ->
      for a = 0 to na - 1 do
        if counts.(a) > 0 then
          go rest ((c, a) :: acc) (log_w +. Float.log (float_of_int counts.(a)))
      done
  in
  go consts [] 0.0

(** [pr_n ?log_prior parts ~query ~n ~tol] is the exact
    [Pr_N^τ̄(query | KB)], or [None] when [#worlds_N^τ̄(KB) = 0].

    [log_prior] re-weights each atom-count profile (log domain) —
    the uniform prior of the random-worlds method when omitted. This
    hook is what implements prior *variants* such as random
    propensities (Section 7.3, {!Propensity}): the method itself never
    re-weights.

    [table] — a {!stat_table} for the same (parts, n, tol) — replaces
    the full composition sweep with its precomputed stat-satisfying
    rows. Per-assignment evaluation and accumulation order are
    unchanged, so results are bit-identical.

    @raise Unsupported when KB or query leave the engine's fragment
    (equality, non-unary predicates, function symbols). *)
let pr_n ?(log_prior = fun _ -> 0.0) ?table (parts : Analysis.parts) ~query ~n
    ~tol =
  if not (Analysis.fully_supported parts) then
    raise (Unsupported "KB has unsupported conjuncts")
  else begin
    let u = parts.Analysis.universe in
    let na = Atoms.num_atoms u in
    let stat = Analysis.statistical_formula parts in
    let facts = Analysis.facts_formula parts in
    let consts =
      Listx.sort_uniq_strings (Analysis.constants parts @ Syntax.constants query)
    in
    (* Statistical conjuncts normally mention no constants, letting us
       evaluate them once per count profile rather than once per
       constant assignment. *)
    let stat_mentions_consts = Syntax.constants stat <> [] in
    let log_kb = ref Logspace.zero and log_kb_q = ref Logspace.zero in
    let eval_profile counts log_multi =
      let prof = { universe = u; n; counts; const_atoms = [] } in
      iter_assignments u counts consts (fun assignment log_w ->
          let prof = { prof with const_atoms = assignment } in
          let kb_ok =
            sat prof tol facts
            && ((not stat_mentions_consts) || sat prof tol stat)
          in
          if kb_ok then begin
            let weight = log_multi +. log_w in
            log_kb := Logspace.add !log_kb weight;
            if sat prof tol query then
              log_kb_q := Logspace.add !log_kb_q weight
          end)
    in
    (match table with
    | Some t
      when t.t_n = n
           && (not stat_mentions_consts)
           && (Array.length t.rows = 0 || Array.length (fst t.rows.(0)) = na)
      ->
      Array.iter
        (fun (counts, lm) ->
          Rw_pool.Budget.check ();
          eval_profile counts (lm +. log_prior counts))
        t.rows
    | _ ->
      Listx.iter_compositions n na (fun counts ->
          (* Budget poll per profile: compositions number in the millions
             for wide universes, and worker domains see no SIGALRM. *)
          Rw_pool.Budget.check ();
          let prof = { universe = u; n; counts; const_atoms = [] } in
          let stat_ok =
            if stat_mentions_consts then true else sat prof tol stat
          in
          if stat_ok then
            eval_profile counts
              (Logspace.log_multinomial n (Array.to_list counts)
              +. log_prior counts)));
    if Logspace.is_zero !log_kb then None
    else Some (Logspace.ratio !log_kb_q !log_kb)
  end

(** [consistent_n parts ~n ~tol] — does the KB have any world of size
    [n] at tolerance [tol]? *)
let consistent_n parts ~n ~tol =
  match pr_n parts ~query:True ~n ~tol with Some _ -> true | None -> false

(** [cost_estimate parts ~n] — approximate number of (profile ×
    assignment) evaluations, to let callers pick a feasible [n]. *)
let cost_estimate (parts : Analysis.parts) ~n =
  let na = Atoms.num_atoms parts.Analysis.universe in
  let consts = List.length (Analysis.constants parts) in
  Listx.count_compositions n na *. (float_of_int na ** float_of_int consts)
