(** Exact finite-[N] world counting for unary knowledge bases, by
    aggregation over atom-count profiles.

    For a unary vocabulary, a world of size [N] is determined up to
    isomorphism by how many elements realise each atom and which atom
    each constant falls in; a formula without equality cannot
    distinguish elements of one atom, so

    [#worlds_N^τ̄(φ) = Σ_counts multinomial(N;counts) ·
                        Σ_assignments Π_c n_atom(c) · [profile ⊨ φ]].

    This computes [Pr_N^τ̄(φ | KB)] exactly (weights in log space) at
    domain sizes far beyond enumeration — which is what makes the
    [N → ∞] trend visible.

    Fragment: unary predicates, constants, no equality, no non-constant
    functions. *)

open Rw_logic

exception Unsupported of string

type profile = {
  universe : Atoms.universe;
  n : int;
  counts : int array;  (** per-atom element counts, summing to [n] *)
  const_atoms : (string * int) list;  (** atom of each named constant *)
}

type prop_value = Value of float | Undefined

val sat : profile -> Tolerance.t -> Syntax.formula -> bool
(** Satisfaction of a sentence by every world with this profile.
    @raise Unsupported on equality / non-unary symbols / functions. *)

type table
(** Precomputed stat-satisfying count profiles with their multinomial
    weights for one (KB parts, domain size, tolerance) — the compiled
    KB's specialised profile counter. Query-independent because it is
    only built when the statistics mention no constants. *)

val table_size : table -> int

val stat_table :
  ?max_rows:int -> Analysis.parts -> n:int -> tol:Tolerance.t -> table option
(** Enumerate the stat-satisfying profiles once. [None] when the table
    would be unsound (statistics mentioning constants) or exceeds
    [max_rows] (default 200k rows — memory bound; callers fall back to
    the full sweep). *)

val pr_n :
  ?log_prior:(int array -> float) ->
  ?table:table ->
  Analysis.parts ->
  query:Syntax.formula ->
  n:int ->
  tol:Tolerance.t ->
  float option
(** Exact [Pr_N^τ̄(query | KB)]; [None] when [#worlds_N^τ̄(KB) = 0].
    [log_prior] re-weights atom-count profiles (log domain; uniform —
    the random-worlds prior — when omitted): the hook behind prior
    variants such as {!Propensity}. [table] (a {!stat_table} for the
    same parts/[n]/[tol]) skips the composition sweep; results are
    bit-identical with or without it.
    @raise Unsupported when KB or query leave the fragment. *)

val consistent_n : Analysis.parts -> n:int -> tol:Tolerance.t -> bool
(** Does the KB have any world of this size at this tolerance? *)

val cost_estimate : Analysis.parts -> n:int -> float
(** Approximate number of (profile × assignment) evaluations — lets
    callers pick a feasible [n]. *)
