(** Maximum-entropy solutions for unary knowledge bases (Section 6).

    The concentration phenomenon: the number of size-[N] worlds with
    atom proportions [p̄] grows as [e^{N·H(p̄)}], so almost all worlds
    satisfying the KB sit near the maximum-entropy point of the
    constraint set [S(KB)]. Degrees of belief about individuals are
    read off that point:

    [Pr_∞(φ(c) | KB) = (Σ_{A ⊨ φ ∧ facts(c)} p*_A) / (Σ_{A ⊨ facts(c)} p*_A)]

    evaluated in the limit of the tolerance schedule. *)

open Rw_logic
open Rw_numeric

type solution = {
  parts : Analysis.parts;
  tol : Tolerance.t;
  point : Vec.t;  (** maximum-entropy atom proportions *)
  entropy : float;
  max_violation : float;
}

exception Infeasible of float
(** Raised when no atom-proportion vector satisfies the constraints at
    the given tolerance — the unary notion of an inconsistent KB (cf.
    Poole's lottery partition, Section 5.5). Carries the residual. *)

let feasibility_threshold = 2e-6

(** [solve parts tol] maximises entropy subject to the KB's constraints
    at tolerance [tol].

    @raise Infeasible when the constraints cannot be met.
    @raise Constraints.Unsupported when the KB is outside the linear
    fragment. *)
let solve (parts : Analysis.parts) tol =
  let dim = Atoms.num_atoms parts.Analysis.universe in
  let cs = Constraints.of_parts parts tol in
  let r = Entropy_opt.solve ~outer_iters:120 ~feas_tol:1e-10 ~dim cs in
  if r.Entropy_opt.max_violation > feasibility_threshold then
    raise (Infeasible r.Entropy_opt.max_violation)
  else
    {
      parts;
      tol;
      point = r.Entropy_opt.point;
      entropy = r.Entropy_opt.entropy;
      max_violation = r.Entropy_opt.max_violation;
    }

(** [mass sol set] is [Σ_{A ∈ set} p*_A]. *)
let mass sol set =
  List.fold_left
    (fun acc a -> acc +. sol.point.(a))
    0.0
    (Atoms.members sol.parts.Analysis.universe set)

(** [conditional sol ~num ~den] is [mass num∩den / mass den], or [None]
    when the denominator carries no mass (conditioning on a
    vanishing-probability event needs the finer finite-[N] analysis —
    see {!val:conditional_refined}). *)
let conditional sol ~num ~den =
  let m_den = mass sol den in
  if m_den <= 0.0 then None else Some (mass sol (Atoms.Set.inter num den) /. m_den)

(** [conditional_refined parts tol ~num ~den] handles conditioning on a
    set whose maxent mass vanishes (e.g. the Nixon diamond's
    Quaker∧Republican overlap under a smallness constraint): re-solve
    the maxent problem *restricted* to maximising the conditional mass
    structure by solving with an additional tiny floor on the
    denominator set, then reading the ratio. The floor cancels in the
    ratio as it tends to 0; we evaluate at a fixed small floor well
    below the tolerances in play.

    Returns [None] when even the floored problem is infeasible. *)
let conditional_refined (parts : Analysis.parts) tol ~num ~den ~floor =
  let u = parts.Analysis.universe in
  let dim = Atoms.num_atoms u in
  let cs = Constraints.of_parts parts tol in
  (* Add: mass(den) ≥ floor, i.e. −Σ_{A∈den} p_A ≤ −floor. *)
  let den_coeffs = Vec.create dim 0.0 in
  List.iter (fun a -> den_coeffs.(a) <- -1.0) (Atoms.members u den);
  let cs = Entropy_opt.Le (den_coeffs, -.floor) :: cs in
  let r = Entropy_opt.solve ~outer_iters:120 ~feas_tol:1e-10 ~dim cs in
  if r.Entropy_opt.max_violation > feasibility_threshold then None
  else begin
    let p = r.Entropy_opt.point in
    let m set =
      List.fold_left (fun acc a -> acc +. p.(a)) 0.0 (Atoms.members u set)
    in
    let m_den = m den in
    if m_den <= 0.0 then None else Some (m (Atoms.Set.inter num den) /. m_den)
  end

(** [belief_in_pred ?facts parts tol ~query_set ~given_set] — the
    degree of belief that an individual whose known facts select
    [given_set] satisfies [query_set], at tolerance [tol]; falls back
    to the refined computation when [given_set] has vanishing mass. *)
let belief parts tol ~query_set ~given_set =
  let sol = solve parts tol in
  match conditional sol ~num:query_set ~den:given_set with
  | Some v when mass sol given_set > 1e-6 -> Some v
  | _ ->
    (* The given set carries (almost) no mass at the maxent point:
       condition via a vanishing floor. *)
    let floor = 1e-7 in
    conditional_refined parts tol ~num:query_set ~den:given_set ~floor

(** [conditional_distribution ?solve parts tol ~given] is the
    distribution of a named individual's atom given that its known
    facts select the atom set [given]: the maxent proportions
    restricted and normalised to [given]. Falls back to the floored
    re-solve when [given] has vanishing mass. Returns an association
    list over the atoms of [given]; [None] when conditioning is
    impossible.

    [solve] supplies the unconditioned maxent solve (a compiled KB
    passes its memoised one); the default re-solves from scratch. The
    floored fallback is query-dependent and always solves fresh. *)
let conditional_distribution ?solve:solve_hook (parts : Analysis.parts) tol
    ~given =
  let u = parts.Analysis.universe in
  let atoms = Atoms.members u given in
  let of_point p =
    let m = List.fold_left (fun acc a -> acc +. p.(a)) 0.0 atoms in
    if m <= 0.0 then None
    else Some (List.map (fun a -> (a, p.(a) /. m)) atoms)
  in
  let sol =
    match solve_hook with Some f -> f tol | None -> solve parts tol
  in
  if mass sol given > 1e-6 then of_point sol.point
  else begin
    (* Vanishing-mass conditioning: floor the given set and re-solve. *)
    let dim = Atoms.num_atoms u in
    let cs = Constraints.of_parts parts tol in
    let den_coeffs = Vec.create dim 0.0 in
    List.iter (fun a -> den_coeffs.(a) <- -1.0) atoms;
    let cs = Entropy_opt.Le (den_coeffs, -1e-7) :: cs in
    let r = Entropy_opt.solve ~outer_iters:120 ~feas_tol:1e-10 ~dim cs in
    if r.Entropy_opt.max_violation > feasibility_threshold then None
    else of_point r.Entropy_opt.point
  end

(** [consistent_at parts tol] — is the KB satisfiable (as a constraint
    system) at this tolerance? The unary form of the paper's "eventual
    consistency" at a given [τ̄]. *)
let consistent_at parts tol =
  match solve parts tol with
  | (_ : solution) -> true
  | exception Infeasible _ -> false
