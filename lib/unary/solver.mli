(** Maximum-entropy solutions for unary knowledge bases (Section 6).

    The concentration phenomenon: the number of size-[N] worlds with
    atom proportions [p̄] grows as [e^{N·H(p̄)}], so almost all
    KB-worlds sit near the maximum-entropy point of the constraint set
    [S(KB)], and degrees of belief about individuals are read off that
    point, conditioned on each individual's known facts. *)

open Rw_logic
open Rw_numeric

type solution = {
  parts : Analysis.parts;
  tol : Tolerance.t;
  point : Vec.t;  (** maximum-entropy atom proportions *)
  entropy : float;
  max_violation : float;
}

exception Infeasible of float
(** No atom-proportion vector satisfies the constraints at the given
    tolerance — the unary notion of an inconsistent KB (cf. Poole's
    partition, Section 5.5). Carries the residual. *)

val feasibility_threshold : float

val solve : Analysis.parts -> Tolerance.t -> solution
(** @raise Infeasible when the constraints cannot be met.
    @raise Constraints.Unsupported outside the linear fragment. *)

val mass : solution -> Atoms.Set.t -> float
(** [Σ_{A ∈ set} p*_A]. *)

val conditional : solution -> num:Atoms.Set.t -> den:Atoms.Set.t -> float option
(** [mass (num∩den) / mass den], or [None] when the denominator carries
    no mass (see {!conditional_refined}). *)

val conditional_refined :
  Analysis.parts ->
  Tolerance.t ->
  num:Atoms.Set.t ->
  den:Atoms.Set.t ->
  floor:float ->
  float option
(** Conditioning on a set whose maxent mass vanishes (e.g. the Nixon
    overlap under a smallness constraint): re-solve with a tiny floor
    on the denominator set and read the ratio; the floor cancels in the
    ratio as it tends to 0. *)

val belief :
  Analysis.parts ->
  Tolerance.t ->
  query_set:Atoms.Set.t ->
  given_set:Atoms.Set.t ->
  float option
(** Degree of belief that an individual whose known facts select
    [given_set] satisfies [query_set], at one tolerance; falls back to
    the refined computation on vanishing mass. *)

val conditional_distribution :
  ?solve:(Tolerance.t -> solution) ->
  Analysis.parts ->
  Tolerance.t ->
  given:Atoms.Set.t ->
  (int * float) list option
(** The distribution of a named individual's atom given its known
    facts: maxent proportions restricted and renormalised to [given]
    (with the floored fallback). [solve] overrides the unconditioned
    maxent solve — a compiled KB passes its memoised solve here; the
    floored fallback always re-solves. *)

val consistent_at : Analysis.parts -> Tolerance.t -> bool
(** Is the KB satisfiable as a constraint system at this tolerance? *)
