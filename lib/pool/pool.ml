(** The domain work pool — see the interface. *)

exception Nested

(* Every task runs with this domain-local flag set — on workers and on
   the coordinator alike — so [on_worker] really means "inside a pool
   task", which is exactly the re-entrancy that must be refused. *)
let in_task_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let on_worker () = !(Domain.DLS.get in_task_key)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (** signalled on new tasks and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

(* Tasks never let an exception escape (map wraps them in a result
   capture), so the only job here is maintaining the re-entrancy flag. *)
let run_task task =
  let flag = Domain.DLS.get in_task_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) task

let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
      if t.closing then None
      else begin
        Condition.wait t.work t.m;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some task ->
    Mutex.unlock t.m;
    run_task task;
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if on_worker () then raise Nested;
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.closing <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let run ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let jobs t = t.jobs

(* ------------------------------------------------------------------ *)
(* Futures: submit-without-participating, for sys-threads             *)
(* ------------------------------------------------------------------ *)

type 'a future = {
  fm : Mutex.t;
  done_ : Condition.t;
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

let async t f =
  if t.jobs < 2 then
    invalid_arg "Pool.async: needs a spawned worker (jobs >= 2)";
  let fut =
    { fm = Mutex.create (); done_ = Condition.create (); result = None }
  in
  let deadline = Budget.current () in
  let task () =
    let r =
      match Budget.with_inherited deadline f with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fm;
    fut.result <- Some r;
    Condition.broadcast fut.done_;
    Mutex.unlock fut.fm
  in
  Mutex.lock t.m;
  if t.closing then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.async: pool is shut down"
  end;
  Queue.add task t.queue;
  Condition.signal t.work;
  Mutex.unlock t.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.result with
    | Some r -> r
    | None ->
      Condition.wait fut.done_ fut.fm;
      wait ()
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  match r with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map t f xs =
  if on_worker () then raise Nested;
  match xs with
  | [] -> []
  | [ x ] -> [ run_task (fun () -> f x) ]
  | xs ->
    (* The submitting domain's budget deadline travels with the tasks:
       a budget on the coordinator bounds the whole fan-out. *)
    let deadline = Budget.current () in
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let remaining = ref n in (* guarded by t.m *)
    let all_done = Condition.create () in
    let task i () =
      let r =
        match Budget.with_inherited deadline (fun () -> f arr.(i)) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.m;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.m
    in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    (* The caller helps drain the queue, then waits for stragglers
       running on other domains. The queue may also hold {!async}
       tasks from other threads; executing those here is harmless
       helping — [remaining] only counts this map's tasks, and the
       condition wait covers the case where the queue empties before
       they finish. *)
    let rec drain () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.m;
        run_task task;
        Mutex.lock t.m;
        drain ()
      | None ->
        if !remaining > 0 then begin
          Condition.wait all_done t.m;
          drain ()
        end
    in
    drain ();
    Mutex.unlock t.m;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
