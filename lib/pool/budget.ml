(** Deadline-polled budgets — see the interface. *)

exception Expired

(* The tick counter amortises the clock read: with a deadline armed,
   only every 64th poll pays for [gettimeofday]. Engines poll from
   per-sample loops whose bodies cost microseconds, so expiry is
   noticed within a few dozen samples. *)
type state = { mutable deadline : float option; mutable tick : int }

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { deadline = None; tick = 0 })

let check () =
  let st = Domain.DLS.get key in
  match st.deadline with
  | None -> ()
  | Some d ->
    st.tick <- st.tick + 1;
    if st.tick land 63 = 0 && Unix.gettimeofday () > d then raise Expired

let current () = (Domain.DLS.get key).deadline

let install st d =
  st.deadline <-
    (match (st.deadline, d) with
    | Some d0, Some d1 -> Some (Float.min d0 d1)
    | None, d1 -> d1
    | d0, None -> d0)

let with_inherited d f =
  match d with
  | None -> f ()
  | Some _ ->
    let st = Domain.DLS.get key in
    let saved = st.deadline in
    install st d;
    Fun.protect ~finally:(fun () -> st.deadline <- saved) f

let with_deadline ~seconds f =
  with_inherited (Some (Unix.gettimeofday () +. seconds)) f
