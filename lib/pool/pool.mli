(** A fixed-size domain work pool.

    One coordinating domain fans work out to [jobs - 1] spawned worker
    domains (plus itself) over a [Mutex]/[Condition] task queue — the
    parallelism substrate for the Monte-Carlo sampler, the service's
    batch evaluator, and the fuzz driver. Nothing here knows about
    those clients; the contract is just:

    - {!map} preserves order: the result list lines up with the input
      list however the tasks were scheduled;
    - exceptions propagate: if a task raises, {!map} finishes the
      remaining tasks (no half-abandoned work) and re-raises the
      lowest-indexed task's exception, with its backtrace, on the
      caller;
    - budgets follow the work: a {!Budget} deadline installed on the
      submitting domain is inherited by every task;
    - nesting is refused, not deadlocked: {!map} or {!create} from
      inside a task raises {!Nested}. Code that may run both ways
      (the MC engine under a parallel batch) tests {!on_worker} and
      falls back to its sequential path.

    [jobs = 1] spawns no domains at all — {!map} degenerates to an
    in-order sequential map — so callers need no separate code path
    for the sequential case. *)

type t

exception Nested
(** Raised by {!create} and {!map} when called from inside a pool
    task: a task blocking on a second fan-out over the same worker set
    is a deadlock, so it is refused eagerly instead. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val create : jobs:int -> t
(** Spawn a pool of [jobs - 1] worker domains ([jobs >= 1]; raises
    [Invalid_argument] otherwise, {!Nested} from inside a task). The
    caller participates in every {!map}, so [jobs] is the true
    parallel width. *)

val shutdown : t -> unit
(** Stop accepting work, wake every idle worker, and join them all.
    Idempotent. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] is [create]/[f]/[shutdown] with the shutdown
    guaranteed on exceptions — the only way pools are used in this
    tree. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. The calling domain executes tasks
    too (it never just blocks while work is queued), then waits for
    stragglers. See the module docstring for the exception and budget
    contract. *)

val on_worker : unit -> bool
(** Is the current code running inside a pool task (on any domain —
    the coordinator executes tasks as well)? The guard nested
    parallelism keys off. *)
