(** A fixed-size domain work pool.

    One coordinating domain fans work out to [jobs - 1] spawned worker
    domains (plus itself) over a [Mutex]/[Condition] task queue — the
    parallelism substrate for the Monte-Carlo sampler, the service's
    batch evaluator, and the fuzz driver. Nothing here knows about
    those clients; the contract is just:

    - {!map} preserves order: the result list lines up with the input
      list however the tasks were scheduled;
    - exceptions propagate: if a task raises, {!map} finishes the
      remaining tasks (no half-abandoned work) and re-raises the
      lowest-indexed task's exception, with its backtrace, on the
      caller;
    - budgets follow the work: a {!Budget} deadline installed on the
      submitting domain is inherited by every task;
    - nesting is refused, not deadlocked: {!map} or {!create} from
      inside a task raises {!Nested}. Code that may run both ways
      (the MC engine under a parallel batch) tests {!on_worker} and
      falls back to its sequential path.

    [jobs = 1] spawns no domains at all — {!map} degenerates to an
    in-order sequential map — so callers need no separate code path
    for the sequential case. *)

type t

exception Nested
(** Raised by {!create} and {!map} when called from inside a pool
    task: a task blocking on a second fan-out over the same worker set
    is a deadlock, so it is refused eagerly instead. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val create : jobs:int -> t
(** Spawn a pool of [jobs - 1] worker domains ([jobs >= 1]; raises
    [Invalid_argument] otherwise, {!Nested} from inside a task). The
    caller participates in every {!map}, so [jobs] is the true
    parallel width. *)

val shutdown : t -> unit
(** Stop accepting work, wake every idle worker, and join them all.
    Idempotent. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] is [create]/[f]/[shutdown] with the shutdown
    guaranteed on exceptions — the only way pools are used in this
    tree. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. The calling domain executes tasks
    too (it never just blocks while work is queued), then waits for
    stragglers. See the module docstring for the exception and budget
    contract. *)

val on_worker : unit -> bool
(** Is the current code running inside a pool task (on any domain —
    the coordinator executes tasks as well)? The guard nested
    parallelism keys off. *)

(** {2 Futures}

    {!map} assumes the submitting domain participates in the work —
    wrong for the serve listener, where many sys-threads (one per
    connection, all sharing the main domain and its DLS/signal state)
    each need their request to run on a worker {e domain} while they
    only block. {!async}/{!await} is that submission path: the task
    queue is shared with {!map}, the submitter never executes tasks,
    and completion is signalled per-future. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Enqueue [f] for the worker domains and return immediately. The
    submitting thread's {!Budget} deadline (if any) is inherited by
    the task, as with {!map}. Requires a pool with at least one
    spawned worker ([jobs >= 2] — the submitter does not participate,
    so someone else must run the task); raises [Invalid_argument]
    otherwise, or if the pool has been shut down. Safe to call from
    any sys-thread. *)

val await : 'a future -> 'a
(** Block until the future's task has run; return its value or
    re-raise its exception with the original backtrace. Must not be
    called from inside a pool task (a worker blocking on queued work
    can deadlock the pool). *)
