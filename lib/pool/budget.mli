(** Cooperative wall-clock budgets for worker domains.

    The service's original budget mechanism is a [SIGALRM] timer whose
    handler raises from the next allocation point. Signals are
    delivered to the {e process} and handled by whichever domain the
    runtime picks — they cannot preempt a specific worker domain, so
    under a domain pool an alarm-based budget silently stops firing
    where the work actually runs.

    This module is the domain-safe replacement: an absolute deadline
    stored in domain-local state, polled explicitly ({!check}) from
    the engines' inner sampling/enumeration loops. Expiry raises
    {!Expired}, which unwinds to whoever installed the deadline — the
    same control flow as the alarm, minus the signal.

    Deadlines nest by narrowing: an inner [with_deadline] can only
    shorten the time left, never extend an enclosing budget.

    {!Pool.map} propagates the submitting domain's deadline into every
    task it runs, so a budget installed on the coordinating domain
    bounds the whole fan-out. *)

exception Expired
(** Raised by {!check} once the current deadline has passed. *)

val check : unit -> unit
(** Poll the current domain's deadline; raises {!Expired} when it has
    passed. Near-free when no deadline is installed (one domain-local
    read); with one installed, the clock is consulted every 64th call
    so the poll can sit in per-sample / per-world loops. *)

val with_deadline : seconds:float -> (unit -> 'a) -> 'a
(** [with_deadline ~seconds f] runs [f] with the current domain's
    deadline set to [now + seconds] — narrowed against any enclosing
    deadline — and restores the previous deadline on the way out,
    whether [f] returns or raises. [f] only observes the deadline
    through {!check}: cooperative, not preemptive. *)

val current : unit -> float option
(** The current domain's absolute deadline (epoch seconds), if any —
    what {!Pool} captures at task submission to inherit budgets across
    domains. *)

val with_inherited : float option -> (unit -> 'a) -> 'a
(** [with_inherited d f] installs absolute deadline [d] (narrowed
    against any existing one) for the duration of [f]; [None] is a
    no-op. The worker-side half of deadline propagation. *)
