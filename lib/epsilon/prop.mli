(** Propositional logic over a finite variable set — the substrate for
    the ε-semantics / System-Z / GMP90 baselines (Sections 3 and 6).
    Worlds are truth assignments, encoded as bitmasks over the sorted
    variable list of a {!vocabulary}. *)

type t =
  | PTrue
  | PFalse
  | PVar of string
  | PNot of t
  | PAnd of t * t
  | POr of t * t
  | PImplies of t * t
  | PIff of t * t

type vocabulary
(** The sorted variable universe a set of formulas ranges over; fixes
    the bitmask encoding of worlds. *)

val variables : t -> string list
(** The variables occurring in a formula, sorted and deduplicated. *)

val vocabulary_of : t list -> vocabulary
(** The joint vocabulary of a formula set. *)

val num_vars : vocabulary -> int

val num_worlds : vocabulary -> int
(** [2 ^ num_vars] — the size of the assignment space. *)

val var_index : vocabulary -> string -> int
(** Raises [Invalid_argument] on unknown variables. *)

val eval : vocabulary -> int -> t -> bool
(** Truth in the assignment encoded by the bitmask. *)

val models : vocabulary -> t -> int list
(** Every satisfying assignment, as bitmasks in increasing order —
    exhaustive over [num_worlds], so only for small vocabularies. *)

val satisfiable : vocabulary -> t -> bool

val valid : vocabulary -> t -> bool
(** True in every assignment of the vocabulary. *)

val conj : t list -> t
(** Right-nested conjunction; [PTrue] for the empty list. *)

val pp : Format.formatter -> t -> unit
