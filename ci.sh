#!/bin/sh
# Tier-1 gate: everything builds, every test passes, and the CLI can
# actually answer the paper's worked examples end to end.
set -eu

dune build
dune runtest

# Smoke: the zoo must run and exit 0 (it exercises every engine,
# including the Monte-Carlo fallback's deterministic default seed).
dune exec bin/rw.exe -- zoo > /dev/null

# Smoke: one explicit Monte-Carlo query, reproducible from its seed.
dune exec bin/rw.exe -- query \
  --kb examples/kb/hepatitis.kb --query 'Hep(Eric)' \
  --engine mc --seed 1 > /dev/null

# Differential fuzz: a fixed-seed budgeted sweep of the metamorphic
# oracle suite (engine agreement, duality, canonicalization, cache,
# convergence, parser totality). Any violation fails the gate and the
# report prints the shrunk counterexample. ~30s; the deeper 500-case
# sweep is run manually (see EXPERIMENTS.md). Runs through the domain
# pool (--jobs 2) so the parallel driver is part of the gate.
dune exec bin/rw.exe -- fuzz --seed 42 --cases 20 --jobs 2

# Parallel batch smoke: the pool path end to end, answers printed in
# input order.
printf '%s\n' 'Hep(Eric)' '~Hep(Eric)' 'Jaun(Eric)' \
  | dune exec bin/rw.exe -- batch --kb examples/kb/hepatitis.kb --jobs 2 \
  > /dev/null

# Determinism: a fixed-seed Monte-Carlo query is bit-identical at any
# pool width when it terminates on its sample budget (TUTORIAL §10).
q1=$(dune exec bin/rw.exe -- query --kb examples/kb/hepatitis.kb \
  --query 'Hep(Eric)' --engine mc --seed 42 --samples 20000 --jobs 1)
q2=$(dune exec bin/rw.exe -- query --kb examples/kb/hepatitis.kb \
  --query 'Hep(Eric)' --engine mc --seed 42 --samples 20000 --jobs 2)
[ "$q1" = "$q2" ] || { echo "ci: mc answer depends on --jobs" >&2; exit 1; }

# Smoke: the NDJSON serve loop — three requests in, three well-formed
# JSON replies out, clean shutdown exit.
serve_out=$(printf '%s\n' \
  '{"id":1,"op":"query","query":"Hep(Eric)"}' \
  '{"id":2,"op":"stats"}' \
  '{"id":3,"op":"shutdown"}' \
  | dune exec bin/rw.exe -- serve --kb examples/kb/hepatitis.kb)
[ "$(printf '%s\n' "$serve_out" | wc -l)" -eq 3 ]
printf '%s\n' "$serve_out" | while IFS= read -r line; do
  case $line in
    '{'*'"ok":true'*'}') ;;
    *) echo "ci: bad serve reply: $line" >&2; exit 1 ;;
  esac
done

# Smoke: --explain prints the derivation and --explain-json carries a
# machine-readable trace that names the winning reference class and
# the paper theorem (the Tweety acceptance criterion).
dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain | grep -q 'id=5.16'
dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain-json | grep -q '"engine-selected"'

# Docs: the TUTORIAL §11 trace snippet is regenerated from the binary
# and diffed against the committed copy, so the walkthrough can never
# drift from what `rw query --explain` actually prints. Timings are
# masked — the one non-deterministic part of a trace.
fresh=$(dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain | sed 's/[0-9][0-9.]* ms/_ ms/g')
committed=$(sed -n '/trace-snippet:begin/,/trace-snippet:end/p' doc/TUTORIAL.md \
  | sed -e '/trace-snippet/d' -e '/^```/d')
if [ "$fresh" != "$committed" ]; then
  echo "ci: doc/TUTORIAL.md §11 trace snippet is stale" >&2
  echo "--- committed ---" >&2
  printf '%s\n' "$committed" >&2
  echo "--- regenerated ---" >&2
  printf '%s\n' "$fresh" >&2
  exit 1
fi

# Docs: the odoc API reference must build where odoc is available;
# the gate skips gracefully on toolchains without it.
if command -v odoc > /dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed; skipping dune build @doc"
fi

echo "ci: all green"
