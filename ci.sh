#!/bin/sh
# Tier-1 gate: everything builds, every test passes, and the CLI can
# actually answer the paper's worked examples end to end.
set -eu

dune build
dune runtest

# Smoke: the zoo must run and exit 0 (it exercises every engine,
# including the Monte-Carlo fallback's deterministic default seed).
dune exec bin/rw.exe -- zoo > /dev/null

# Smoke: one explicit Monte-Carlo query, reproducible from its seed.
dune exec bin/rw.exe -- query \
  --kb examples/kb/hepatitis.kb --query 'Hep(Eric)' \
  --engine mc --seed 1 > /dev/null

# Differential fuzz: a fixed-seed budgeted sweep of the metamorphic
# oracle suite (engine agreement, duality, canonicalization, cache,
# convergence, parser totality, compiled-artifact answer identity,
# belief-change session soundness).
# Any violation fails the gate and the
# report prints the shrunk counterexample. ~8 min on a single-core box
# (case cost is long-tailed — a few generated KBs dominate); the
# deeper 500-case sweep is run manually (see EXPERIMENTS.md). Runs
# through the domain pool (--jobs 2) so the parallel driver is part of
# the gate.
dune exec bin/rw.exe -- fuzz --seed 42 --cases 20 --jobs 2

# Agreement pin: the 500-case agreement-oracle sweep that used to lose
# 3 cases to the MC importance-tilt misses on near-degenerate KBs
# (seeds 708734350365, 764477501514, 1096281972639 — minimized into
# test/fuzz_corpus/agreement-mc-tilt-*.case) must stay at 0 failures.
# Restricted to the agreement oracle to keep the gate's runtime
# proportionate (~7 min; the full eight-oracle 500-case sweep is
# ~45 min and stays a manual step — see EXPERIMENTS.md).
dune exec bin/rw.exe -- fuzz --seed 42 --cases 500 --oracle agreement \
  --jobs 2

# Update pin: the 500-case belief-change sweep — every generated
# assert/retract sequence must leave session answers bit-identical to
# a cold dispatch on the accumulated KB (ISSUE 9's soundness gate).
# Restricted to the update oracle for the same runtime reasons as the
# agreement pin above.
dune exec bin/rw.exe -- fuzz --seed 42 --cases 500 --oracle update \
  --jobs 2

# Whole-system simulation (doc/SIMULATION.md). Three gates:
#
# 1. Fault sweep: a pinned-seed 300-step run with the fault plane on —
#    failed and torn store writes, failed fsyncs, failed compiles,
#    rejected pool fan-outs, crash-restarts — must hold every
#    invariant (exit 0; seed 3 was chosen because all five catalog
#    points fire within it, which test_sim.ml also pins).
dune exec bin/rw.exe -- sim --seed 3 --steps 300 --faults --max-size 4 \
  > /dev/null
# 2. Determinism: the same 200-step run twice must produce a
#    byte-identical event log — digests, origins, fault firings, the
#    summary line, everything.
sim1=$(dune exec bin/rw.exe -- sim --seed 42 --steps 200 --max-size 4)
sim2=$(dune exec bin/rw.exe -- sim --seed 42 --steps 200 --max-size 4)
[ "$sim1" = "$sim2" ] \
  || { echo "ci: sim event log is not deterministic" >&2; exit 1; }
# 3. Seed validation (shared with fuzz): an overflowing --seed is a
#    usage error (exit 2), never a silent wrap into a different run.
seed_rc=0
dune exec bin/rw.exe -- sim --seed 4611686018427387904 --steps 1 \
  > /dev/null 2>&1 || seed_rc=$?
[ "$seed_rc" -eq 2 ] \
  || { echo "ci: overflowing --seed must exit 2 (got $seed_rc)" >&2; exit 1; }
seed_rc=0
dune exec bin/rw.exe -- fuzz --seed=-1 --cases 1 > /dev/null 2>&1 || seed_rc=$?
[ "$seed_rc" -eq 2 ] \
  || { echo "ci: fuzz bad --seed must exit 2 (got $seed_rc)" >&2; exit 1; }

# Parallel batch smoke: the pool path end to end, answers printed in
# input order.
printf '%s\n' 'Hep(Eric)' '~Hep(Eric)' 'Jaun(Eric)' \
  | dune exec bin/rw.exe -- batch --kb examples/kb/hepatitis.kb --jobs 2 \
  > /dev/null

# Determinism: a fixed-seed Monte-Carlo query is bit-identical at any
# pool width when it terminates on its sample budget (TUTORIAL §10).
q1=$(dune exec bin/rw.exe -- query --kb examples/kb/hepatitis.kb \
  --query 'Hep(Eric)' --engine mc --seed 42 --samples 20000 --jobs 1)
q2=$(dune exec bin/rw.exe -- query --kb examples/kb/hepatitis.kb \
  --query 'Hep(Eric)' --engine mc --seed 42 --samples 20000 --jobs 2)
[ "$q1" = "$q2" ] || { echo "ci: mc answer depends on --jobs" >&2; exit 1; }

# Smoke: the NDJSON serve loop — three requests in, three well-formed
# JSON replies out, clean shutdown exit.
serve_out=$(printf '%s\n' \
  '{"id":1,"op":"query","query":"Hep(Eric)"}' \
  '{"id":2,"op":"stats"}' \
  '{"id":3,"op":"shutdown"}' \
  | dune exec bin/rw.exe -- serve --kb examples/kb/hepatitis.kb)
[ "$(printf '%s\n' "$serve_out" | wc -l)" -eq 3 ]
printf '%s\n' "$serve_out" | while IFS= read -r line; do
  case $line in
    '{'*'"ok":true'*'}') ;;
    *) echo "ci: bad serve reply: $line" >&2; exit 1 ;;
  esac
done

# Durable store: kill -9 loses nothing already answered. Session 1
# answers an explained query over a store and is SIGKILLed with no
# orderly shutdown; session 2 over the same store must serve that
# query from the durable tier with a byte-identical answer and trace
# (only the per-reply fields — elapsed_ms, cached, tier, and the
# cache-provenance facts — may differ). The server runs as the bare
# binary, not under `dune exec`, so the signal hits the real process.
store_dir=$(mktemp -d)
store="$store_dir/answers.rws"
fifo="$store_dir/requests.fifo"
out1="$store_dir/session1.out"
mkfifo "$fifo"
_build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
  --store "$store" < "$fifo" > "$out1" 2> /dev/null &
serve_pid=$!
exec 9> "$fifo"
printf '%s\n' '{"id":1,"op":"query","query":"Hep(Eric)","explain":true}' >&9
i=0
while [ ! -s "$out1" ] && [ "$i" -lt 100 ]; do
  sleep 0.1; i=$((i + 1))
done
[ -s "$out1" ] || { echo "ci: store session 1 never answered" >&2; exit 1; }
kill -9 "$serve_pid"
exec 9>&-
wait "$serve_pid" 2> /dev/null || true
# The log must scan clean after the kill — the completed append is all
# there is, no torn tail (the reply cannot precede its write-through).
_build/default/bin/rw.exe store verify "$store" > /dev/null \
  || { echo "ci: store corrupt after kill -9" >&2; exit 1; }

# The simulated version of the same story: an injected torn mid-record
# append followed by a crash-restart, replayed from the pinned corpus
# case — recovery must truncate exactly the torn tail and reproduce
# every pre-crash answer (the sim's recovery + stability invariants).
dune exec bin/rw.exe -- sim --replay test/sim_corpus/torn-restart.sim \
  > /dev/null \
  || { echo "ci: torn-restart sim replay found a violation" >&2; exit 1; }
out2=$(printf '%s\n' '{"id":1,"op":"query","query":"Hep(Eric)","explain":true}' \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      --store "$store" 2> /dev/null)
case $out2 in
  *'"tier":"store"'*) ;;
  *) echo "ci: restart did not serve from the store: $out2" >&2; exit 1 ;;
esac
strip_reply() {
  sed -e 's/"elapsed_ms":[0-9.e+-]*,\{0,1\}//g' \
      -e 's/"cached":[a-z]*,\{0,1\}//g' \
      -e 's/"tier":"[a-z-]*",\{0,1\}//g' \
      -e 's/{"ev":"fact","tag":"cache"[^}]*},\{0,1\}//g'
}
norm1=$(strip_reply < "$out1")
norm2=$(printf '%s\n' "$out2" | strip_reply)
if [ "$norm1" != "$norm2" ]; then
  echo "ci: store replay is not byte-identical" >&2
  echo "--- session 1 (killed) ---" >&2; printf '%s\n' "$norm1" >&2
  echo "--- session 2 (restart) ---" >&2; printf '%s\n' "$norm2" >&2
  exit 1
fi
rm -rf "$store_dir"

# Socket serve: a listening server hammered by 4 parallel clients must
# answer everyone coherently, then survive kill -9 with a clean store.
# Each client sends the same query set over its own connection; every
# answer must be byte-identical to the single-connection session's
# (modulo the per-reply timing/tier fields), the compiled stats must
# show exactly one compile across all clients, and after the SIGKILL
# the store must verify clean and warm-restart from the durable tier.
listen_dir=$(mktemp -d)
lsock="$listen_dir/rw.sock"
lstore="$listen_dir/answers.rws"
_build/default/bin/rw.exe serve --listen "$lsock" \
  --kb examples/kb/hepatitis.kb --store "$lstore" --jobs 2 \
  2> /dev/null &
listen_pid=$!
reqs='{"op":"query","query":"Hep(Eric)"}
{"op":"query","query":"~Hep(Eric)"}
{"op":"query","query":"Jaun(Eric)"}
{"op":"query","query":"Jaun(Eric) /\\ Hep(Eric)"}'
client_pids=
i=0
while [ "$i" -lt 4 ]; do
  printf '%s\n' "$reqs" \
    | _build/default/bin/rw.exe client "$lsock" --retry 10 \
    > "$listen_dir/client$i.out" &
  client_pids="$client_pids $!"
  i=$((i + 1))
done
for pid in $client_pids; do
  wait "$pid" || { echo "ci: concurrent client failed" >&2; exit 1; }
done
single=$(printf '%s\n' "$reqs" \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      2> /dev/null | strip_reply)
i=0
while [ "$i" -lt 4 ]; do
  got=$(strip_reply < "$listen_dir/client$i.out")
  if [ "$got" != "$single" ]; then
    echo "ci: concurrent client $i diverged from the single-connection session" >&2
    echo "--- single connection ---" >&2; printf '%s\n' "$single" >&2
    echo "--- client $i ---" >&2; printf '%s\n' "$got" >&2
    exit 1
  fi
  i=$((i + 1))
done
echo '{"op":"stats"}' \
  | _build/default/bin/rw.exe client "$lsock" --retry 10 \
  | grep -q '"compiles":1' \
  || { echo "ci: listen served 4 clients with more than one KB compile" >&2; exit 1; }
kill -9 "$listen_pid"
wait "$listen_pid" 2> /dev/null || true
_build/default/bin/rw.exe store verify "$lstore" > /dev/null \
  || { echo "ci: store corrupt after kill -9 of the listener" >&2; exit 1; }
warm=$(printf '%s\n' '{"op":"query","query":"Hep(Eric)"}' \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      --store "$lstore" 2> /dev/null)
case $warm in
  *'"tier":"store"'*) ;;
  *) echo "ci: restart after listener kill -9 did not serve from the store" >&2
     exit 1 ;;
esac
rm -rf "$listen_dir"

# The simulated face of the batch/pool surface: a rejected parallel
# fan-out must fail atomically and a sequential retry must answer —
# replayed from the pinned corpus case.
dune exec bin/rw.exe -- sim --replay test/sim_corpus/pool-submit-batch.sim \
  > /dev/null \
  || { echo "ci: pool-submit sim replay found a violation" >&2; exit 1; }

# Belief-change session: a scripted session over --listen is SIGKILLed
# mid-session; a restart from the same --store replaying the same
# script must land on answers byte-identical to an uninterrupted run
# (modulo the per-reply timing/tier fields). This pins the revalidation
# write-through: the pre-kill session's answer was computed under the
# original KB digest and carried across two updates purely by
# revalidation, so the replay can only match if those re-keyed entries
# reached the store under their post-update digests.
sess_dir=$(mktemp -d)
ssock="$sess_dir/rw.sock"
sess_script='{"op":"query","query":"Hep(Eric)"}
{"op":"session_update","action":"assert","src":"Wet(Sam)"}
{"op":"query","query":"Hep(Eric)"}
{"op":"session_update","action":"assert","src":"Damp(Kim)"}
{"op":"query","query":"Hep(Eric)"}'
# Uninterrupted reference: the whole script in one serve session.
sess_ref=$(printf '%s\n' "$sess_script" \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      --store "$sess_dir/ref.rws" 2> /dev/null | strip_reply)
# Interrupted run: first three lines over the socket, then kill -9.
_build/default/bin/rw.exe serve --listen "$ssock" \
  --kb examples/kb/hepatitis.kb --store "$sess_dir/live.rws" \
  2> /dev/null &
sess_pid=$!
printf '%s\n' "$sess_script" | head -n 3 \
  | _build/default/bin/rw.exe client "$ssock" --retry 10 \
  > "$sess_dir/pre-kill.out" \
  || { echo "ci: session client failed" >&2; exit 1; }
kill -9 "$sess_pid"
wait "$sess_pid" 2> /dev/null || true
_build/default/bin/rw.exe store verify "$sess_dir/live.rws" > /dev/null \
  || { echo "ci: session store corrupt after kill -9" >&2; exit 1; }
# The killed session's second query never dispatched an engine under
# the updated KB — it survived the assert by revalidation. A restart
# that replays just the update must therefore find the re-keyed answer
# in the durable tier.
revived=$(printf '%s\n' \
  '{"op":"session_update","action":"assert","src":"Wet(Sam)"}' \
  '{"op":"query","query":"Hep(Eric)"}' \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      --store "$sess_dir/live.rws" 2> /dev/null | tail -n 1)
case $revived in
  *'"tier":"store"'*) ;;
  *) echo "ci: revalidated answer not served from the store after restart: $revived" >&2
     exit 1 ;;
esac
# Full replay from the crashed store matches the uninterrupted run.
sess_replay=$(printf '%s\n' "$sess_script" \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      --store "$sess_dir/live.rws" 2> /dev/null | strip_reply)
if [ "$sess_replay" != "$sess_ref" ]; then
  echo "ci: session replay after kill -9 diverged from the uninterrupted run" >&2
  echo "--- uninterrupted ---" >&2; printf '%s\n' "$sess_ref" >&2
  echo "--- replay ---" >&2; printf '%s\n' "$sess_replay" >&2
  exit 1
fi
rm -rf "$sess_dir"

# Delta reuse: evidence-only updates must carry the compiled artifact
# across digest changes — three asserts about known predicates may not
# trigger a single recompile (compiles stays 1, three carries).
sess_stats=$(printf '%s\n' \
  '{"op":"query","query":"Hep(Eric)"}' \
  '{"op":"session_update","action":"assert","src":"Jaun(Dana)"}' \
  '{"op":"session_update","action":"assert","src":"Jaun(Kim)"}' \
  '{"op":"session_update","action":"assert","src":"Jaun(Pat)"}' \
  '{"op":"query","query":"Hep(Eric)"}' \
  '{"op":"stats"}' \
  | _build/default/bin/rw.exe serve --kb examples/kb/hepatitis.kb \
      2> /dev/null)
case $(printf '%s\n' "$sess_stats" | tail -n 1) in
  *'"compiles":1'*) ;;
  *) echo "ci: evidence-only updates recompiled the artifact" >&2
     printf '%s\n' "$sess_stats" >&2; exit 1 ;;
esac
case $(printf '%s\n' "$sess_stats" | tail -n 1) in
  *'"artifact_carries":3'*) ;;
  *) echo "ci: expected 3 artifact carries" >&2
     printf '%s\n' "$sess_stats" >&2; exit 1 ;;
esac

# Compiled-KB tier: a 200-query same-KB batch must produce replies
# byte-identical with and without the compiled-artifact cache, modulo
# the per-reply timing fields (strip_reply above). The queries are all
# distinct, so nothing is served by the answer LRU — every reply goes
# through an engine, once against the shared artifact and once from
# scratch. This is the whole-pipeline statement of the artifact's
# answers-unchanged contract.
compile_dir=$(mktemp -d)
qfile="$compile_dir/queries.txt"
i=0
while [ "$i" -lt 200 ]; do echo "Hep(C$i)"; i=$((i + 1)); done > "$qfile"
with_c=$(dune exec bin/rw.exe -- batch --kb examples/kb/hepatitis.kb \
  --queries "$qfile" --json | strip_reply)
without_c=$(dune exec bin/rw.exe -- batch --kb examples/kb/hepatitis.kb \
  --queries "$qfile" --json --no-compiled | strip_reply)
if [ "$with_c" != "$without_c" ]; then
  echo "ci: compiled-KB tier changed answers" >&2
  echo "--- with compiled cache ---" >&2; printf '%s\n' "$with_c" >&2
  echo "--- without (--no-compiled) ---" >&2; printf '%s\n' "$without_c" >&2
  exit 1
fi
rm -rf "$compile_dir"

# Smoke: `rw compile` builds and describes the artifact — every
# tolerance in the schedule must presolve on this KB.
dune exec bin/rw.exe -- compile --kb examples/kb/hepatitis.kb --json \
  | grep -q '"presolved":6'

# Smoke: --explain prints the derivation and --explain-json carries a
# machine-readable trace that names the winning reference class and
# the paper theorem (the Tweety acceptance criterion).
dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain | grep -q 'id=5.16'
dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain-json | grep -q '"engine-selected"'

# Docs: the TUTORIAL §11 trace snippet is regenerated from the binary
# and diffed against the committed copy, so the walkthrough can never
# drift from what `rw query --explain` actually prints. Timings are
# masked — the one non-deterministic part of a trace.
fresh=$(dune exec bin/rw.exe -- query --kb examples/kb/tweety.kb \
  --query 'Fly(Tweety)' --explain | sed 's/[0-9][0-9.]* ms/_ ms/g')
committed=$(sed -n '/trace-snippet:begin/,/trace-snippet:end/p' doc/TUTORIAL.md \
  | sed -e '/trace-snippet/d' -e '/^```/d')
if [ "$fresh" != "$committed" ]; then
  echo "ci: doc/TUTORIAL.md §11 trace snippet is stale" >&2
  echo "--- committed ---" >&2
  printf '%s\n' "$committed" >&2
  echo "--- regenerated ---" >&2
  printf '%s\n' "$fresh" >&2
  exit 1
fi

# Docs: the odoc API reference must build where odoc is available;
# the gate skips gracefully on toolchains without it.
if command -v odoc > /dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed; skipping dune build @doc"
fi

echo "ci: all green"
