#!/bin/sh
# Tier-1 gate: everything builds, every test passes, and the CLI can
# actually answer the paper's worked examples end to end.
set -eu

dune build
dune runtest

# Smoke: the zoo must run and exit 0 (it exercises every engine,
# including the Monte-Carlo fallback's deterministic default seed).
dune exec bin/rw.exe -- zoo > /dev/null

# Smoke: one explicit Monte-Carlo query, reproducible from its seed.
dune exec bin/rw.exe -- query \
  --kb examples/kb/hepatitis.kb --query 'Hep(Eric)' \
  --engine mc --seed 1 > /dev/null

echo "ci: all green"
