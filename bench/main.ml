(* The benchmark harness: regenerates every experiment of the
   reproduction (the paper's worked examples and theorem instances —
   its "tables and figures") and then measures engine performance with
   Bechamel.

   Run with:  dune exec bench/main.exe
   Skip perf: dune exec bench/main.exe -- --no-perf *)

open Rw_logic
open Randworlds

let parse s = Parser.formula_exn s

let section title =
  Fmt.pr "@.==========================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==========================================================@."

(* ------------------------------------------------------------------ *)
(* Table 1: the KB zoo — every worked example, paper vs measured      *)
(* ------------------------------------------------------------------ *)

let matches expected (a : Answer.t) =
  match (expected, a.Answer.result) with
  | Rw_kbzoo.Kbzoo.Exactly v, _ -> (
    match Answer.point_value a with
    | Some got -> Float.abs (got -. v) < 0.01
    | None -> false)
  | Inside i, Answer.Within j -> Rw_prelude.Interval.subset j i
  | Inside i, Answer.Point v -> Rw_prelude.Interval.mem ~eps:1e-6 v i
  | Less_than v, _ -> (
    match Answer.point_value a with Some got -> got < v | None -> false)
  | NoLimit, Answer.No_limit _ -> true
  | Inconsistent_kb, Answer.Inconsistent -> true
  | _ -> false

let table_zoo () =
  section "Table 1 — the paper's worked examples (paper vs measured)";
  Fmt.pr "%-5s %-15s %-22s %-28s %-6s@." "id" "source" "expected" "measured [engine]" "match";
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (e : Rw_kbzoo.Kbzoo.entry) ->
      let a = Engine.degree_of_belief ~kb:e.kb e.query in
      let hit = matches e.expected a in
      incr total;
      if hit then incr ok;
      Fmt.pr "%-5s %-15s %-22s %-28s %-6s@." e.id e.source
        (Fmt.str "%a" Rw_kbzoo.Kbzoo.pp_expectation e.expected)
        (Fmt.str "%a" Answer.pp a)
        (if hit then "yes" else "NO"))
    (Rw_kbzoo.Kbzoo.all ());
  Fmt.pr "-- %d/%d reproduced@." !ok !total

(* ------------------------------------------------------------------ *)
(* Table 2: the Dempster grid (Theorem 5.26)                          *)
(* ------------------------------------------------------------------ *)

let nixon ~alpha ~beta ~i1 ~i2 =
  parse
    (Printf.sprintf
       "||Pac(x) | Quaker(x)||_x ~=_%d %g /\\ ||Pac(x) | Repub(x)||_x ~=_%d %g /\\ \
        ||Quaker(x) /\\ Repub(x)||_x <=_9 0.0001 /\\ Quaker(Nixon) /\\ Repub(Nixon)"
       i1 alpha i2 beta)

let table_dempster () =
  section "Table 2 — evidence combination grid: δ(α,β) vs random worlds";
  Fmt.pr "%6s %6s | %10s %12s %8s@." "α" "β" "δ(α,β)" "measured" "err";
  List.iter
    (fun (alpha, beta) ->
      let expected = Dempster.combine2 alpha beta in
      let a = Engine.degree_of_belief ~kb:(nixon ~alpha ~beta ~i1:1 ~i2:2) (parse "Pac(Nixon)") in
      match Answer.point_value a with
      | Some got ->
        Fmt.pr "%6.2f %6.2f | %10.4f %12.4f %8.1e@." alpha beta expected got
          (Float.abs (got -. expected))
      | None -> Fmt.pr "%6.2f %6.2f | %10.4f %12s@." alpha beta expected "—")
    [
      (0.9, 0.9); (0.8, 0.8); (0.7, 0.5); (0.9, 0.3); (0.5, 0.5); (0.2, 0.2);
      (0.3, 0.7); (1.0, 0.3); (1.0, 0.7);
    ]

(* ------------------------------------------------------------------ *)
(* Figure 1: convergence of Pr_N to the asymptotic value              *)
(* ------------------------------------------------------------------ *)

let figure_convergence () =
  section
    "Figure 1 — exact Pr_N(Hep(Eric)) converging to the τ→0, N→∞ limit 0.8";
  let kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let query = parse "Hep(Eric)" in
  Fmt.pr "%6s" "N";
  let taus = [ 0.05; 0.02; 0.01 ] in
  List.iter (fun tau -> Fmt.pr " %12s" (Fmt.str "τ=%g" tau)) taus;
  Fmt.pr "@.";
  List.iter
    (fun n ->
      Fmt.pr "%6d" n;
      List.iter
        (fun tau ->
          match Unary_engine.pr_n ~kb ~query ~n ~tol:(Tolerance.uniform tau) with
          | Some v -> Fmt.pr " %12.6f" v
          | None -> Fmt.pr " %12s" "—")
        taus;
      Fmt.pr "@.")
    [ 10; 20; 40; 80; 120 ];
  let a = Maxent_engine.estimate ~kb query in
  Fmt.pr "%6s %a   (maximum-entropy asymptote)@." "N→∞" Answer.pp a

(* ------------------------------------------------------------------ *)
(* Table 3: random worlds vs the baselines                            *)
(* ------------------------------------------------------------------ *)

let table_baselines () =
  section "Table 3 — who solves which default-reasoning benchmark";
  let open Rw_epsilon in
  let v s = Prop.PVar s in
  let nt a = Prop.PNot a in
  let ( &&& ) a b = Prop.PAnd (a, b) in
  let rules =
    [
      Defaults.rule (v "bird") (v "fly");
      Defaults.rule (v "penguin") (nt (v "fly"));
      Defaults.rule (v "penguin") (v "bird");
      Defaults.rule (v "bird") (v "warm");
      Defaults.rule (v "yellow") (v "easy");
    ]
  in
  let fly_core =
    "||Fly(x) | Bird(x)||_x ~=_1 1 /\\ ||Fly(x) | Penguin(x)||_x ~=_2 0 /\\ \
     forall x (Penguin(x) => Bird(x)) /\\ ||Warm(x) | Bird(x)||_x ~=_3 1 /\\ \
     ||Easy(x) | Yellow(x)||_x ~=_4 1"
  in
  let rw kb_extra phi =
    Randworlds.Defaults.entails ~kb:(parse (fly_core ^ kb_extra)) (parse phi)
  in
  let yn b = if b then "yes" else "no" in
  Fmt.pr "%-38s %-8s %-8s %-8s %-8s@." "benchmark" "ε-ent" "Z" "GMP-ME" "rand-w";
  let row name eps z me rwv = Fmt.pr "%-38s %-8s %-8s %-8s %-8s@." name (yn eps) (yn z) (yn me) (yn rwv) in
  row "specificity (penguin ⇒ ¬fly)"
    (Defaults.p_entails rules (v "penguin", nt (v "fly")))
    (Defaults.z_entails rules (v "penguin", nt (v "fly")))
    (Me.me_plausible rules (v "penguin", nt (v "fly")))
    (rw " /\\ Penguin(Tweety)" "~Fly(Tweety)");
  row "irrelevance (yellow penguin ⇒ ¬fly)"
    (Defaults.p_entails rules (v "penguin" &&& v "yellow", nt (v "fly")))
    (Defaults.z_entails rules (v "penguin" &&& v "yellow", nt (v "fly")))
    (Me.me_plausible rules (v "penguin" &&& v "yellow", nt (v "fly")))
    (rw " /\\ Penguin(Tweety) /\\ Yellow(Tweety)" "~Fly(Tweety)");
  row "inheritance (penguin ⇒ warm)"
    (Defaults.p_entails rules (v "penguin", v "warm"))
    (Defaults.z_entails rules (v "penguin", v "warm"))
    (Me.me_plausible rules (v "penguin", v "warm"))
    (rw " /\\ Penguin(Tweety)" "Warm(Tweety)");
  row "drowning (yellow penguin ⇒ easy)"
    (Defaults.p_entails rules (v "penguin" &&& v "yellow", v "easy"))
    (Defaults.z_entails rules (v "penguin" &&& v "yellow", v "easy"))
    (Me.me_plausible rules (v "penguin" &&& v "yellow", v "easy"))
    (rw " /\\ Penguin(Tweety) /\\ Yellow(Tweety)" "Easy(Tweety)");

  Fmt.pr "@.Reference classes vs random worlds on competing evidence:@.";
  let kb =
    parse
      "||Heart(x) | Chol(x)||_x ~=_1 0.15 /\\ ||Heart(x) | Smoker(x)||_x ~=_2 0.09 /\\ \
       ||Chol(x) /\\ Smoker(x)||_x <=_3 0.0001 /\\ Chol(Fred) /\\ Smoker(Fred)"
  in
  let o = Rw_refclass.Refclass.infer ~kb ~query_pred:"Heart" ~individual:"Fred" () in
  Fmt.pr "  reference-class: %a (%s)@." Rw_prelude.Interval.pp o.value o.reason;
  let a = Engine.degree_of_belief ~kb (parse "Heart(Fred)") in
  Fmt.pr "  random worlds:   %a  (Dempster: δ(0.15, 0.09) = %.4f)@." Answer.pp a
    (Dempster.combine2 0.15 0.09)

(* ------------------------------------------------------------------ *)
(* Table 4: tolerance priorities (ablation, Section 5.3)              *)
(* ------------------------------------------------------------------ *)

let table_priorities () =
  section "Table 4 — conflicting hard defaults under tolerance priorities";
  let kb = nixon ~alpha:1.0 ~beta:0.0 ~i1:1 ~i2:2 in
  let query = parse "Pac(Nixon)" in
  let probe label powers =
    let tols =
      List.map
        (fun scale -> Tolerance.make ~scale ~powers ())
        [ 0.05; 0.025; 0.0125; 0.00625; 0.003125 ]
    in
    let a = Maxent_engine.estimate ~tols ~kb query in
    Fmt.pr "  %-44s %a@." label (Fmt.of_to_string (Fmt.str "%a" Answer.pp)) a
  in
  Fmt.pr "  %-44s %a@." "syntactic verdict (rules engine):" Answer.pp
    (Rules_engine.infer ~kb query);
  probe "equal strengths (τ₁ = τ₂):" [];
  probe "Quaker default stronger (τ₁ = τ²):" [ (1, 2.0) ];
  probe "Republican default stronger (τ₂ = τ²):" [ (2, 2.0) ];
  Fmt.pr "  → the limit depends on how τ̄ → 0: no robust degree of belief.@."

(* ------------------------------------------------------------------ *)
(* Table 5: representation dependence (Section 7.2)                   *)
(* ------------------------------------------------------------------ *)

let table_representation () =
  section "Table 5 — representation dependence (Section 7.2)";
  let show label kb q =
    let a = Engine.degree_of_belief ~kb:(parse kb) (parse q) in
    Fmt.pr "  %-52s %a@." label Answer.pp a
  in
  show "Pr(White(c)) over vocabulary {White}:" "White(C) \\/ ~White(C)" "White(C)";
  show "Pr(White(c)) after refining ¬White into Red/Blue:"
    "forall x ((White(x) \\/ Red(x) \\/ Blue(x)) /\\ ~(White(x) /\\ Red(x)) /\\ \
     ~(White(x) /\\ Blue(x)) /\\ ~(Red(x) /\\ Blue(x)))"
    "White(C)";
  show "Pr(Fly(Tweety)), {Bird, Fly} encoding:"
    "||Fly(x) | Bird(x)||_x ~=_1 0.5 /\\ Bird(Tweety)" "Fly(Tweety)";
  show "Pr(FlyingBird(Tweety)), {Bird, FlyingBird}:"
    "||FlyingBird(x) | Bird(x)||_x ~=_1 0.5 /\\ Bird(Tweety) /\\ forall x \
     (FlyingBird(x) => Bird(x))"
    "FlyingBird(Tweety)";
  show "Pr(Bird(Opus)), {Bird, Fly} encoding:"
    "||Fly(x) | Bird(x)||_x ~=_1 0.5 /\\ Bird(Tweety)" "Bird(Opus)";
  show "Pr(Bird(Opus)), {Bird, FlyingBird} encoding:"
    "||FlyingBird(x) | Bird(x)||_x ~=_1 0.5 /\\ Bird(Tweety) /\\ forall x \
     (FlyingBird(x) => Bird(x))"
    "Bird(Opus)";
  Fmt.pr "  → the robust query (Fly ≙ FlyingBird: 0.5) survives reencoding;@.";
  Fmt.pr "    the underdetermined one (Bird(Opus)) is language dependent.@."

(* ------------------------------------------------------------------ *)
(* Table 6: lottery paradox and unique names (Section 5.5)            *)
(* ------------------------------------------------------------------ *)

let table_lottery () =
  section "Table 6 — the lottery paradox and unique names (enum engine)";
  let tol = Tolerance.uniform 0.1 in
  let vocab = Vocab.make ~preds:[ ("Winner", 1) ] ~funcs:[ ("C", 0) ] in
  let kb = Syntax.exists_unique "x" (parse "Winner(x)") in
  Fmt.pr "  lottery, known N:        ";
  List.iter
    (fun n ->
      match Enum_engine.pr_n ~vocab ~n ~tol ~kb (parse "Winner(C)") with
      | Some p -> Fmt.pr "N=%d: %.3f  " n p
      | None -> ())
    [ 2; 4; 8 ];
  Fmt.pr "(= 1/N)@.";
  (match Enum_engine.pr_n ~vocab ~n:8 ~tol ~kb (parse "exists x (Winner(x))") with
  | Some p -> Fmt.pr "  Pr(someone wins):        %.3f@." p
  | None -> ());
  let vocab3 = Vocab.make ~preds:[] ~funcs:[ ("C1", 0); ("C2", 0); ("C3", 0) ] in
  Fmt.pr "  unique names, Pr(C1=C2): ";
  List.iter
    (fun n ->
      match Enum_engine.pr_n ~vocab:vocab3 ~n ~tol ~kb:Syntax.True (parse "C1 = C2") with
      | Some p -> Fmt.pr "N=%d: %.3f  " n p
      | None -> ())
    [ 2; 4; 8 ];
  Fmt.pr "(= 1/N → 0)@.";
  Fmt.pr "  forced collision → 1/3:  ";
  let kbd = parse "(C1 = C2) \\/ (C2 = C3) \\/ (C1 = C3)" in
  List.iter
    (fun n ->
      match Enum_engine.pr_n ~vocab:vocab3 ~n ~tol ~kb:kbd (parse "C1 = C2") with
      | Some p -> Fmt.pr "N=%d: %.3f  " n p
      | None -> ())
    [ 4; 8; 16 ];
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Table 7: Poole's partition & sampling failure                      *)
(* ------------------------------------------------------------------ *)

let table_limits_of_method () =
  section "Table 7 — the method's own limits, reproduced";
  (* Poole's partition (Section 5.5): inconsistent under ≈1 reading. *)
  let poole =
    parse
      "forall x (Bird(x) <=> Emu(x) \\/ Penguin(x)) /\\ \
       ||Emu(x) | Bird(x)||_x ~=_1 0 /\\ ||Penguin(x) | Bird(x)||_x ~=_1 0 /\\ \
       ||Bird(x)||_x >=_2 0.1"
  in
  let parts = Rw_unary.Analysis.analyze poole in
  Fmt.pr "  Poole's exceptional partition consistent?   %b (expected: false)@."
    (Rw_unary.Solver.consistent_at parts (Tolerance.uniform 1e-3));
  (* Sampling failure (Section 7.3). *)
  let a =
    Engine.degree_of_belief
      ~kb:(parse "||Fly(x) | Bird(x) /\\ S(x)||_x ~=_1 0.9 /\\ Bird(Tweety) /\\ ~S(Tweety)")
      (parse "Fly(Tweety)")
  in
  Fmt.pr "  Sample statistic transfers outside S?       Pr = %a (expected 0.5: no)@."
    Answer.pp a

(* ------------------------------------------------------------------ *)
(* Table 9: the Monte-Carlo engine — agreement and reach              *)
(* ------------------------------------------------------------------ *)

let table_mc () =
  section "Table 9 — Monte-Carlo engine: agreement with enum, then beyond it";
  let tol = Tolerance.uniform 0.1 in
  let mc_cell ~vocab ~n ~kb query =
    match Mc_engine.pr_n ~vocab ~n ~tol ~kb query with
    | Rw_mc.Estimator.Estimate { mean; ci; stats } ->
      ( Fmt.str "%.4f ∈ %a" mean Rw_prelude.Interval.pp ci,
        Some (ci, stats) )
    | Rw_mc.Estimator.Starved stats ->
      (Fmt.str "starved (%a)" Rw_mc.Estimator.pp_stats stats, None)
  in
  (* Where enumeration is exact, sampling must agree within its own
     interval — the statistical cross-check, run at bench scale. *)
  Fmt.pr "  exact-vs-sampled (same N, τ=0.1):@.";
  Fmt.pr "  %-34s %3s %10s   %-28s %-6s@." "kb" "N" "enum" "mc (95% CI)" "agree";
  let hep_kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let vocab3 = Vocab.make ~preds:[] ~funcs:[ ("C1", 0); ("C2", 0); ("C3", 0) ] in
  let collision = parse "(C1 = C2) \\/ (C2 = C3) \\/ (C1 = C3)" in
  let lottery_vocab = Vocab.make ~preds:[ ("Winner", 1) ] ~funcs:[ ("C", 0) ] in
  let lottery_kb = Syntax.exists_unique "x" (parse "Winner(x)") in
  List.iter
    (fun (label, vocab, n, kb, query) ->
      match Enum_engine.pr_n ~vocab ~n ~tol ~kb query with
      | None -> Fmt.pr "  %-34s %3d %10s@." label n "(no worlds)"
      | Some exact ->
        let cell, est = mc_cell ~vocab ~n ~kb query in
        let agree =
          match est with
          | Some (ci, _) ->
            if Rw_prelude.Interval.mem ~eps:1e-9 exact ci then "yes" else "NO"
          | None -> "NO"
        in
        Fmt.pr "  %-34s %3d %10.4f   %-28s %-6s@." label n exact cell agree)
    [
      ( "hepatitis",
        Vocab.of_formulas [ hep_kb ],
        5,
        hep_kb,
        parse "Hep(Eric)" );
      ("forced collision", vocab3, 8, collision, parse "C1 = C2");
      ("lottery ∃!x Winner", lottery_vocab, 8, lottery_kb, parse "Winner(C)");
      ("unique names", vocab3, 8, Syntax.True, parse "C1 = C2");
    ];
  (* Beyond the enumeration guard: N = 20, 50, 100 are far past
     max_log10_worlds for these vocabularies, yet sampling still
     converges on the paper's limiting values. *)
  Fmt.pr "@.  beyond enumeration (mc only, τ=0.1):@.";
  Fmt.pr "  %-34s %4s   %-30s %8s %9s %6s@." "kb (limit)" "N" "mc (95% CI)"
    "samples" "kb-rate" "strat";
  List.iter
    (fun (label, vocab, kb, query) ->
      List.iter
        (fun n ->
          let cell, est = mc_cell ~vocab ~n ~kb query in
          match est with
          | Some (_, s) ->
            Fmt.pr "  %-34s %4d   %-30s %8d %9.2e %6s@." label n cell
              s.Rw_mc.Estimator.samples s.Rw_mc.Estimator.hit_rate
              (if s.Rw_mc.Estimator.stratified then "yes" else "no")
          | None -> Fmt.pr "  %-34s %4d   %-30s@." label n cell)
        [ 20; 50; 100 ])
    [
      ("forced collision → 1/3", vocab3, collision, parse "C1 = C2");
      ("unique names → 0", vocab3, Syntax.True, parse "C1 = C2");
    ];
  (* The hepatitis KB needs the double limit: Pr_N^τ ≈ 0.8 − O(τ), so
     shrink τ with N and compare against the exact unary count at the
     same grid point. The sharpest point is where uniform rejection
     starves and the maxent-tilted proposal takes over. *)
  Fmt.pr "@.  hepatitis → 0.8 along a (N↑, τ↓) diagonal, vs exact unary:@.";
  Fmt.pr "  %4s %6s %8s   %-30s %9s %6s@." "N" "τ" "exact" "mc (95% CI)"
    "kb-rate" "strat";
  let hep_query = parse "Hep(Eric)" in
  let hep_vocab = Vocab.of_formulas [ hep_kb ] in
  List.iter
    (fun (n, tau) ->
      let tol = Tolerance.uniform tau in
      let exact =
        match Unary_engine.pr_n ~kb:hep_kb ~query:hep_query ~n ~tol with
        | Some v -> Fmt.str "%8.4f" v
        | None -> Fmt.str "%8s" "—"
      in
      match Mc_engine.pr_n ~vocab:hep_vocab ~n ~tol ~kb:hep_kb hep_query with
      | Rw_mc.Estimator.Estimate { mean; ci; stats } ->
        Fmt.pr "  %4d %6g %s   %-30s %9.2e %6s@." n tau exact
          (Fmt.str "%.4f ∈ %a" mean Rw_prelude.Interval.pp ci)
          stats.Rw_mc.Estimator.hit_rate
          (if stats.Rw_mc.Estimator.stratified then "yes" else "no")
      | Rw_mc.Estimator.Starved stats ->
        Fmt.pr "  %4d %6g %s   starved (%a)@." n tau exact
          Rw_mc.Estimator.pp_stats stats)
    [ (20, 0.1); (50, 0.05); (100, 0.025) ]

(* ------------------------------------------------------------------ *)
(* Figure 2: engine cost scaling (Section 7.4)                        *)
(* ------------------------------------------------------------------ *)

let figure_scaling () =
  section
    "Figure 2 — engine cost vs domain size N (Section 7.4's computational story)";
  let kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let query = parse "Hep(Eric)" in
  let tol = Tolerance.uniform 0.05 in
  let vocab = Vocab.of_formulas [ kb; query ] in
  let time f =
    let t0 = Sys.time () in
    let (_ : float option) = f () in
    Sys.time () -. t0
  in
  Fmt.pr "  %-8s %14s %14s@." "N" "enum (s)" "unary (s)";
  List.iter
    (fun n ->
      let enum_t =
        if Rw_model.Enum.log10_world_count vocab n <= 7.0 then
          Fmt.str "%14.4f" (time (fun () -> Enum_engine.pr_n ~vocab ~n ~tol ~kb query))
        else Fmt.str "%14s" "(> 10^7 worlds)"
      in
      let unary_t =
        Fmt.str "%14.4f" (time (fun () -> Unary_engine.pr_n ~kb ~query ~n ~tol))
      in
      Fmt.pr "  %-8d %s %s@." n enum_t unary_t)
    [ 3; 4; 5; 6; 20; 40; 80; 160 ];
  let t0 = Sys.time () in
  let (_ : Answer.t) = Maxent_engine.estimate ~kb query in
  Fmt.pr "  %-8s %14s %14.4f   (whole τ-schedule, N-independent)@." "N→∞" "—"
    (Sys.time () -. t0);
  Fmt.pr
    "  enumeration is exponential in N; exact unary counting is polynomial\n\
    \  (profiles × assignments); the maxent asymptote does not depend on N.@."

(* ------------------------------------------------------------------ *)
(* Table 8: learning — random worlds vs random propensities (§7.3)    *)
(* ------------------------------------------------------------------ *)

let table_learning () =
  section "Table 8 — learning ablation: uniform prior vs random propensities";
  let open Rw_unary in
  Fmt.pr "  observing m flying birds, then asking about a new one:@.";
  Fmt.pr "  %4s %14s %14s %14s@." "m" "rand-worlds" "propensities" "Laplace";
  List.iter
    (fun m ->
      let kb =
        parse (String.concat " /\\ " (List.init m (fun i -> Printf.sprintf "Fly(C%d)" i)))
      in
      let query = parse "Fly(Cnew)" in
      let parts = Analysis.analyze kb in
      let rw =
        let at n =
          Option.get (Profile.pr_n parts ~query ~n ~tol:(Tolerance.uniform 0.05))
        in
        let i, _, _ =
          Limits.linear_intercept
            [ 1.0 /. 20.0; 1.0 /. 40.0; 1.0 /. 80.0 ]
            [ at 20; at 40; at 80 ]
        in
        i
      in
      let prop =
        match Propensity.estimate ~ns:[ 20; 30; 40 ] ~kb query with
        | Some v -> v
        | None -> Float.nan
      in
      Fmt.pr "  %4d %14.4f %14.4f %14.4f@." m rw prop
        (float_of_int (m + 1) /. float_of_int (m + 2)))
    [ 1; 3; 8 ];
  let kb = parse "forall x (Giraffe(x) => Tall(x))" in
  let rw =
    match Answer.point_value (Maxent_engine.estimate ~kb (parse "Tall(C)")) with
    | Some v -> v
    | None -> Float.nan
  in
  let prop =
    match Propensity.estimate ~ns:[ 20; 30; 40 ] ~kb (parse "Tall(C)") with
    | Some v -> v
    | None -> Float.nan
  in
  Fmt.pr "  'all giraffes are tall' only:  rand-worlds %.4f, propensities %.4f@."
    rw prop;
  Fmt.pr "  → propensities learn from samples (Laplace), and over-learn from@.";
  Fmt.pr "    bare universals — both sides of the Section 7.3 discussion.@."

(* ------------------------------------------------------------------ *)
(* Table 10: the query service — cache hit-rate and repeat speedup    *)
(* ------------------------------------------------------------------ *)

(* Two syntactic variants of a query that canonicalize to the same
   digest: a double negation, and a commuted/decorated form. The mixed
   workload re-asks every zoo query in both variants — the cache
   should collapse all three to one engine dispatch. *)
let variant_commuted (q : Syntax.formula) =
  match q with
  | Syntax.And (a, b) -> Syntax.And (b, a)
  | Syntax.Or (a, b) -> Syntax.Or (b, a)
  | Syntax.Compare (z1, (Syntax.Approx_eq _ as c), z2) -> Syntax.Compare (z2, c, z1)
  | q -> Syntax.And (q, Syntax.True)

let table_service () =
  section "Table 10 — query service: answer cache over the KB zoo";
  Fmt.pr
    "  workload: every zoo query asked 3× (verbatim, ~~q, commuted) through \
     one service@.";
  let svc =
    Rw_service.Service.create
      ~config:
        {
          Rw_service.Service.default_config with
          Rw_service.Service.cache_capacity = 256;
        }
      ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let total_direct = ref 0.0 and total_service = ref 0.0 in
  let mismatches = ref 0 in
  Fmt.pr "  %-5s %12s %12s %8s@." "id" "direct (ms)" "service (ms)" "agree";
  List.iter
    (fun (e : Rw_kbzoo.Kbzoo.entry) ->
      let variants = [ e.query; Syntax.Not (Syntax.Not e.query); variant_commuted e.query ] in
      (* Direct: the one-shot path, a full dispatch per variant. *)
      let direct_answers, direct_t =
        time (fun () ->
            List.map (fun q -> Engine.degree_of_belief ~kb:e.kb q) variants)
      in
      Rw_service.Service.load_kb svc e.kb;
      let service_answers, service_t =
        time (fun () ->
            List.map
              (fun q ->
                match Rw_service.Service.query svc q with
                | Ok (a, _) -> a
                | Error msg -> failwith msg)
              variants)
      in
      (* All three service answers come from one cache entry, so they
         must all match the direct dispatch of the verbatim query.
         (Direct dispatch of a syntactic variant may legitimately land
         on a different engine — that is the cost the cache removes.) *)
      let d0 = List.hd direct_answers in
      let agree =
        List.for_all
          (fun (s : Answer.t) ->
            d0.Answer.result = s.Answer.result
            && d0.Answer.engine = s.Answer.engine)
          service_answers
      in
      if not agree then incr mismatches;
      total_direct := !total_direct +. direct_t;
      total_service := !total_service +. service_t;
      Fmt.pr "  %-5s %12.3f %12.3f %8s@." e.id (direct_t *. 1000.0)
        (service_t *. 1000.0)
        (if agree then "yes" else "NO"))
    (Rw_kbzoo.Kbzoo.all ());
  let stats = Rw_service.Service.stats svc in
  let cache = stats.Rw_service.Service.cache in
  let lookups = cache.Rw_service.Lru.hits + cache.Rw_service.Lru.misses in
  Fmt.pr "  %-5s %12.3f %12.3f@." "total" (!total_direct *. 1000.0)
    (!total_service *. 1000.0);
  Fmt.pr
    "-- hit-rate %d/%d = %.0f%%, repeat-query speedup %.1fx, %d verdict \
     mismatches@."
    cache.Rw_service.Lru.hits lookups
    (100.0 *. float_of_int cache.Rw_service.Lru.hits /. float_of_int (max 1 lookups))
    (!total_direct /. Float.max 1e-9 !total_service)
    !mismatches

(* ------------------------------------------------------------------ *)
(* Table 13: the durable answer store                                 *)
(* ------------------------------------------------------------------ *)

(* What persistence buys and what it costs: a cold session (every
   query a full engine dispatch plus a write-through) against a
   warm-restarted one (fresh process: recovery scan, cold LRU, every
   query a store hit), at pool widths 1 and 4; then the per-hit
   latency of each cache tier on one resident KB. *)
let table_store () =
  section
    "Table 13 — durable answer store: cold vs warm restart, hit latency by \
     tier";
  Fmt.pr
    "  workload: every zoo query asked 3 ways (verbatim, ~~q, commuted), \
     batch per entry@.";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let with_store path f =
    match Rw_store.Store.open_ path with
    | Error msg -> failwith msg
    | Ok (st, report) ->
      Fun.protect
        ~finally:(fun () -> Rw_store.Store.close st)
        (fun () -> f st report)
  in
  let service ?store () =
    Rw_service.Service.create
      ~config:
        {
          Rw_service.Service.default_config with
          Rw_service.Service.cache_capacity = 256;
        }
      ?store ()
  in
  let run_workload ~jobs svc =
    List.iter
      (fun (e : Rw_kbzoo.Kbzoo.entry) ->
        Rw_service.Service.load_kb svc e.kb;
        List.iter
          (function Ok _ -> () | Error msg -> failwith msg)
          (Rw_service.Service.batch ~jobs svc
             [
               e.query;
               Syntax.Not (Syntax.Not e.query);
               variant_commuted e.query;
             ]))
      (Rw_kbzoo.Kbzoo.all ())
  in
  Fmt.pr "  %-28s %12s %12s %9s %10s@." "workload" "cold (ms)" "warm (ms)"
    "speedup" "recovered";
  (* Zoo sweep, sequential: cold = engine dispatch + write-through per
     distinct digest; warm restart = recovery scan + cold LRU, every
     answer a store hit. *)
  let path = Filename.temp_file "rw_bench_store" ".rws" in
  let (), cold_t =
    time (fun () ->
        with_store path (fun st _ -> run_workload ~jobs:1 (service ~store:st ())))
  in
  let recovered = ref 0 in
  let (), warm_t =
    time (fun () ->
        with_store path (fun st report ->
            recovered := report.Rw_store.Store.recovered;
            run_workload ~jobs:1 (service ~store:st ())))
  in
  Fmt.pr "  %-28s %12.1f %12.1f %8.1fx %10d@." "zoo x3 variants, jobs 1"
    (cold_t *. 1000.0) (warm_t *. 1000.0)
    (cold_t /. Float.max 1e-9 warm_t)
    !recovered;
  Sys.remove path;
  (* One batch of distinct queries through the domain pool: the
     parallel write-through (cold) and the parallel store-hit path
     (warm restart) at widths 1 and 4. Distinct digests, so domains
     never dogpile on one cache entry. *)
  let batch_n = 64 in
  let batch_kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let batch_qs =
    List.init batch_n (fun i -> parse (Printf.sprintf "Hep(C%d)" i))
  in
  let run_batch ~jobs svc =
    Rw_service.Service.load_kb svc batch_kb;
    List.iter
      (function Ok _ -> () | Error msg -> failwith msg)
      (Rw_service.Service.batch ~jobs svc batch_qs)
  in
  List.iter
    (fun jobs ->
      let path = Filename.temp_file "rw_bench_store" ".rws" in
      let (), cold_t =
        time (fun () ->
            with_store path (fun st _ -> run_batch ~jobs (service ~store:st ())))
      in
      let recovered = ref 0 in
      let (), warm_t =
        time (fun () ->
            with_store path (fun st report ->
                recovered := report.Rw_store.Store.recovered;
                run_batch ~jobs (service ~store:st ())))
      in
      Fmt.pr "  %-28s %12.1f %12.1f %8.1fx %10d@."
        (Printf.sprintf "%d-query batch, jobs %d" batch_n jobs)
        (cold_t *. 1000.0) (warm_t *. 1000.0)
        (cold_t /. Float.max 1e-9 warm_t)
        !recovered;
      Sys.remove path)
    [ 1; 4 ];
  (* Per-hit latency by tier: N distinct queries against one resident
     KB, asked once per tier state. LRU-only vs store-backed separates
     the hashtable probe from the positional read + payload decode. *)
  let n = batch_n in
  let hep_kb = batch_kb in
  let qs = batch_qs in
  let ask svc q =
    match Rw_service.Service.query svc q with
    | Ok _ -> ()
    | Error msg -> failwith msg
  in
  let path = Filename.temp_file "rw_bench_store" ".rws" in
  let lru_t =
    with_store path (fun st _ ->
        let svc = service ~store:st () in
        Rw_service.Service.load_kb svc hep_kb;
        List.iter (ask svc) qs;
        (* populate both tiers *)
        snd (time (fun () -> List.iter (ask svc) qs)))
  in
  let store_t =
    with_store path (fun st _ ->
        let svc = service ~store:st () in
        Rw_service.Service.load_kb svc hep_kb;
        (* cold LRU over a full store: every ask probes the log *)
        snd (time (fun () -> List.iter (ask svc) qs)))
  in
  let engine_t =
    let svc = service () in
    Rw_service.Service.load_kb svc hep_kb;
    snd (time (fun () -> List.iter (ask svc) qs))
  in
  Sys.remove path;
  Fmt.pr
    "-- hit latency (n=%d): lru %.1f µs/q, store %.1f µs/q, engine dispatch \
     %.1f µs/q@."
    n
    (lru_t *. 1e6 /. float_of_int n)
    (store_t *. 1e6 /. float_of_int n)
    (engine_t *. 1e6 /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Table 14: compiled knowledge bases                                 *)
(* ------------------------------------------------------------------ *)

(* What the compiled-KB artifact buys on the canonical serve workload:
   many distinct queries against one resident KB. Every query is a
   distinct canonical digest, so the answer tiers never hit and each
   item is a full dispatch — the only difference between the rows is
   whether the dispatch reuses the compiled artifact (memoised maxent
   solves, statistical index, vocabulary) or rebuilds everything from
   scratch. Verdicts are cross-checked item-by-item: the artifact must
   be invisible in the answers. *)
let table_compile () =
  section
    "Table 14 — compiled KBs: same-KB batches, artifact reuse vs from-scratch";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let run ~compiled_capacity qs =
    let svc =
      Rw_service.Service.create
        ~config:
          {
            Rw_service.Service.default_config with
            Rw_service.Service.compiled_capacity;
          }
        ()
    in
    Rw_service.Service.load_kb svc kb;
    time (fun () ->
        List.map
          (fun q ->
            match Rw_service.Service.query svc q with
            | Ok ((a : Answer.t), _) -> a.Answer.result
            | Error msg -> failwith msg)
          qs)
  in
  let mismatches a b =
    List.fold_left2 (fun n x y -> if x = y then n else n + 1) 0 a b
  in
  Fmt.pr "  %-34s %12s %12s %9s %11s@." "workload" "plain (ms)" "compiled (ms)"
    "speedup" "mismatches";
  let row label qs =
    let plain, plain_t = run ~compiled_capacity:0 qs in
    let fast, fast_t =
      run
        ~compiled_capacity:
          Rw_service.Service.default_config
            .Rw_service.Service.compiled_capacity qs
    in
    let n = List.length qs in
    Fmt.pr "  %-34s %12.1f %12.1f %8.1fx %11d@." label (plain_t *. 1000.0)
      (fast_t *. 1000.0)
      (plain_t /. Float.max 1e-9 fast_t)
      (mismatches plain fast);
    Fmt.pr "    per query: %.0f µs -> %.0f µs@."
      (plain_t *. 1e6 /. float_of_int n)
      (fast_t *. 1e6 /. float_of_int n)
  in
  (* The headline batch: 1000 distinct maxent-routed queries (unknown
     constants C0..C999 defeat the answer LRU by construction). *)
  row "1000 distinct queries, maxent"
    (List.init 1000 (fun i -> parse (Printf.sprintf "Hep(C%d)" i)));
  (* The unary engine's profile tables: force the counting engine on
     200 distinct queries (bypassing dispatch, which would route these
     to maxent) and reuse the artifact's memoised tables. *)
  let unary_qs = List.init 200 (fun i -> parse (Printf.sprintf "Hep(C%d)" i)) in
  let artifact = Rw_compile.Compiled_kb.compile kb in
  let run_unary compiled =
    time (fun () ->
        List.map
          (fun q ->
            let a = Engine.run ?compiled Engine.Unary ~kb q in
            a.Answer.result)
          unary_qs)
  in
  let plain_u, plain_ut = run_unary None in
  let fast_u, fast_ut = run_unary (Some artifact) in
  Fmt.pr "  %-34s %12.1f %12.1f %8.1fx %11d@." "200 distinct queries, unary"
    (plain_ut *. 1000.0) (fast_ut *. 1000.0)
    (plain_ut /. Float.max 1e-9 fast_ut)
    (mismatches plain_u fast_u);
  Fmt.pr "    per query: %.0f µs -> %.0f µs@."
    (plain_ut *. 1e6 /. 200.0)
    (fast_ut *. 1e6 /. 200.0);
  (* The artifact itself: what one compile costs up front. *)
  let s = Rw_compile.Compiled_kb.stats artifact in
  Fmt.pr
    "-- one-time compile %.2f ms: %d conjuncts (%d statistical), %s atoms, \
     %d/%d tolerances pre-solved@."
    s.Rw_compile.Compiled_kb.compile_ms s.Rw_compile.Compiled_kb.conjunct_count
    s.Rw_compile.Compiled_kb.stat_count
    (match s.Rw_compile.Compiled_kb.atoms with
    | Some n -> string_of_int n
    | None -> "-")
    s.Rw_compile.Compiled_kb.presolved
    (s.Rw_compile.Compiled_kb.presolved + s.Rw_compile.Compiled_kb.infeasible)

(* ------------------------------------------------------------------ *)
(* Table 15: belief-change sessions                                   *)
(* ------------------------------------------------------------------ *)

(* What delta-aware invalidation buys an accumulating agent: a session
   holding 50 cached rules-definitive answers takes one piece of
   evidence disjoint from all of them, then re-asks everything. The
   session path revalidates — the compiled artifact is carried across
   the digest change (evidence-only delta) and every re-query is an
   LRU hit under the new digest. The baseline is what the same agent
   had to do before sessions existed: reload the combined KB (a full
   swap — caches reclaimed, artifact recompiled) and recompute every
   answer. Verdicts are cross-checked bit-for-bit between the paths;
   the reuse must be invisible in the answers. *)
let table_session () =
  section "Table 15 — belief-change sessions: re-query after new evidence";
  let n = 50 in
  let kb =
    parse
      (String.concat " /\\ "
         ("||Hep(x) | Jaun(x)||_x ~=_1 0.8"
         :: List.init n (fun i -> Printf.sprintf "Jaun(E%d)" i)))
  in
  let queries = List.init n (fun i -> parse (Printf.sprintf "Hep(E%d)" i)) in
  let delta = parse "Jaun(Fred)" in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let ask svc q =
    match Rw_service.Service.query svc q with
    | Ok ((a : Answer.t), _) -> a.Answer.result
    | Error msg -> failwith msg
  in
  let warm () =
    let svc = Rw_service.Service.create () in
    Rw_service.Service.load_kb svc kb;
    List.iter (fun q -> ignore (ask svc q)) queries;
    svc
  in
  (* Session path: one disjoint assert, then re-ask everything. *)
  let svc_s = warm () in
  let outcome, update_t =
    time (fun () ->
        match
          Rw_service.Service.update svc_s Rw_service.Service.Assert delta
        with
        | Ok o -> o
        | Error msg -> failwith msg)
  in
  let results_s, requery_s = time (fun () -> List.map (ask svc_s) queries) in
  (* Swap path: the pre-session workflow — reload the combined KB
     (dropping every cache the digest change invalidates), recompute. *)
  let svc_w = warm () in
  let (), reload_t =
    time (fun () -> Rw_service.Service.load_kb svc_w (Syntax.And (kb, delta)))
  in
  let results_w, requery_w = time (fun () -> List.map (ask svc_w) queries) in
  let mism =
    List.fold_left2
      (fun m a b -> if a = b then m else m + 1)
      0 results_s results_w
  in
  Fmt.pr "  %-40s %13s %14s@." "path" "mutation (ms)" "re-query (ms)";
  Fmt.pr "  %-40s %13.2f %14.2f@."
    (Printf.sprintf "session assert (revalidated %d, %s)"
       outcome.Rw_service.Service.revalidated
       outcome.Rw_service.Service.artifact)
    (update_t *. 1000.0) (requery_s *. 1000.0);
  Fmt.pr "  %-40s %13.2f %14.2f@." "full KB reload (reclaim + recompute)"
    (reload_t *. 1000.0) (requery_w *. 1000.0);
  Fmt.pr
    "-- %d re-queries: revalidated %.1fx faster than post-reload recompute \
     (end to end %.1fx), %d verdict mismatches@."
    n
    (requery_w /. Float.max 1e-9 requery_s)
    ((reload_t +. requery_w) /. Float.max 1e-9 (update_t +. requery_s))
    mism

(* ------------------------------------------------------------------ *)
(* Table 11: domain-pool scaling                                      *)
(* ------------------------------------------------------------------ *)

(* The parallel contract measured: throughput scales with --jobs while
   the answers stay bit-identical, because the MC engine splits its
   generator per chunk (not per domain) and merges in chunk order. The
   MC workload pins the sample count (target half-width 0 disables
   early stopping) so every row does exactly the same work. *)
let table_parallel () =
  section "Table 11 — domain-pool scaling: MC sampling and batch throughput";
  let job_counts = [ 1; 2; 4; 8 ] in
  let hep_kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let hep_query = parse "Hep(Eric)" in
  let vocab = Vocab.of_formulas [ hep_kb; hep_query ] in
  let tol = Tolerance.uniform 0.2 in
  let cfg =
    {
      Rw_mc.Estimator.default_config with
      Rw_mc.Estimator.max_samples = 262_144;
      target_halfwidth = 0.0;
      max_seconds = 300.0;
    }
  in
  let run_mc pool =
    let t0 = Unix.gettimeofday () in
    let o =
      Rw_mc.Estimator.estimate ~config:cfg ?pool ~seed:42 ~vocab ~n:32 ~tol
        ~kb:hep_kb hep_query
    in
    (o, Unix.gettimeofday () -. t0)
  in
  Fmt.pr "  mc sampling, fixed %d-sample workload (N=32, τ=0.2, seed 42):@."
    cfg.Rw_mc.Estimator.max_samples;
  Fmt.pr "  %4s %9s %12s %8s   %-24s@." "jobs" "time (s)" "samples/s"
    "speedup" "estimate";
  let mc_base = ref 0.0 in
  let mc_results =
    List.map
      (fun jobs ->
        let o, dt =
          if jobs = 1 then run_mc None
          else Rw_pool.Pool.run ~jobs (fun p -> run_mc (Some p))
        in
        if jobs = 1 then mc_base := dt;
        let cell =
          match o with
          | Rw_mc.Estimator.Estimate { mean; ci; _ } ->
            Fmt.str "%.4f ∈ %a" mean Rw_prelude.Interval.pp ci
          | Rw_mc.Estimator.Starved _ -> "starved"
        in
        Fmt.pr "  %4d %9.2f %12.0f %7.1fx   %-24s@." jobs dt
          (float_of_int cfg.Rw_mc.Estimator.max_samples /. dt)
          (!mc_base /. dt) cell;
        match o with
        | Rw_mc.Estimator.Estimate { mean; ci; _ } -> Some (mean, ci)
        | Rw_mc.Estimator.Starved _ -> None)
      job_counts
  in
  (* Batch: distinct MC-routed queries (the binary predicate pushes
     each one past the unary/enum engines) against one resident KB,
     cache off so every item is a real dispatch. *)
  let srcs =
    List.init 16 (fun i -> Printf.sprintf "Hep(Eric) /\\ R%d(Eric, Eric)" i)
  in
  let run_batch jobs =
    let svc =
      Rw_service.Service.create
        ~config:
          {
            Rw_service.Service.default_config with
            Rw_service.Service.cache_capacity = 0;
            engine_options =
              {
                Engine.default_options with
                Engine.mc_samples = Some 10_000;
              };
          }
        ()
    in
    Rw_service.Service.load_kb svc hep_kb;
    let t0 = Unix.gettimeofday () in
    let results = Rw_service.Service.batch_srcs ~jobs svc srcs in
    let dt = Unix.gettimeofday () -. t0 in
    let answers =
      List.map
        (fun (r, _ms) ->
          match r with
          | Ok ((a : Answer.t), _) -> Some a.Answer.result
          | Error _ -> None)
        results
    in
    (answers, dt)
  in
  Fmt.pr "@.  service batch, %d mc-routed queries, cache off:@."
    (List.length srcs);
  Fmt.pr "  %4s %9s %12s %8s@." "jobs" "time (s)" "queries/s" "speedup";
  let batch_base = ref 0.0 in
  let batch_results =
    List.map
      (fun jobs ->
        let answers, dt = run_batch jobs in
        if jobs = 1 then batch_base := dt;
        Fmt.pr "  %4d %9.2f %12.1f %7.1fx@." jobs dt
          (float_of_int (List.length srcs) /. dt)
          (!batch_base /. dt);
        answers)
      job_counts
  in
  let all_equal = function
    | [] -> true
    | x :: rest -> List.for_all (fun y -> y = x) rest
  in
  Fmt.pr "-- determinism across jobs: mc estimates %s, batch answers %s@."
    (if all_equal mc_results then "bit-identical" else "DIVERGED")
    (if all_equal batch_results then "bit-identical" else "DIVERGED")

(* ------------------------------------------------------------------ *)
(* Table 12: explanation traces — dispatch cost, explain off vs on    *)
(* ------------------------------------------------------------------ *)

(* The trace sink is a [Trace.t option] threaded as an optional
   argument: with --explain off the dispatcher carries [None] and each
   emission site is one match on it, so the off path must price at
   measurement noise. A live trace costs in proportion to the number
   of decision points (a few dozen facts per query), never the
   engine's own work. Both claims measured over the full KB zoo,
   best-of-R sweep totals, with the off/off spread as the noise
   floor. *)
let table_explain () =
  section "Table 12 — explanation traces: dispatch cost, explain off vs on";
  let entries = Rw_kbzoo.Kbzoo.all () in
  let sweep ~traced () =
    List.fold_left
      (fun events (e : Rw_kbzoo.Kbzoo.entry) ->
        let trace = if traced then Some (Rw_trace.Trace.create ()) else None in
        ignore (Engine.degree_of_belief ?trace ~kb:e.kb e.query);
        match trace with
        | Some tr -> events + List.length (Rw_trace.Trace.events tr)
        | None -> events)
      0 entries
  in
  let rounds = 5 in
  let best label f =
    let best_t = ref infinity and last = ref 0 in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      last := f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best_t then best_t := dt
    done;
    Fmt.pr "  %-30s %10.1f ms  (best of %d)@." label (!best_t *. 1000.0)
      rounds;
    (!best_t, !last)
  in
  ignore (sweep ~traced:false ());
  (* warm-up sweep *)
  let off1, _ = best "explain off (trace = None)" (sweep ~traced:false) in
  let off2, _ = best "explain off, repeated" (sweep ~traced:false) in
  let on, events = best "explain on (fresh trace)" (sweep ~traced:true) in
  let off = Float.min off1 off2 in
  let pct a b = 100.0 *. (a -. b) /. b in
  Fmt.pr
    "-- %d zoo queries, %d trace events when on (%.1f/query)@.\
     -- off/off spread %+.2f%% (noise floor), explain-on overhead %+.2f%%@."
    (List.length entries) events
    (float_of_int events /. float_of_int (List.length entries))
    (pct (Float.max off1 off2) off)
    (pct on off)

(* ------------------------------------------------------------------ *)
(* Performance benchmarks (Bechamel)                                  *)
(* ------------------------------------------------------------------ *)

let perf_tests () =
  let open Bechamel in
  let hep_kb = parse "Jaun(Eric) /\\ ||Hep(x) | Jaun(x)||_x ~=_1 0.8" in
  let hep_query = parse "Hep(Eric)" in
  let penguin_kb =
    parse
      "||Fly(x) | Bird(x)||_x ~=_1 1 /\\ ||Fly(x) | Penguin(x)||_x ~=_2 0 /\\ \
       forall x (Penguin(x) => Bird(x)) /\\ Penguin(Tweety)"
  in
  let penguin_query = parse "Fly(Tweety)" in
  let parts = Rw_unary.Analysis.analyze hep_kb in
  let vocab = Vocab.of_formulas [ hep_kb; hep_query ] in
  let tol = Tolerance.uniform 0.05 in
  Test.make_grouped ~name:"randworlds"
    [
      Test.make ~name:"parse-formula"
        (Staged.stage (fun () ->
             ignore (parse "||Hep(x) | Jaun(x)||_x ~=_1 0.8 /\\ Jaun(Eric)")));
      Test.make ~name:"rules-engine"
        (Staged.stage (fun () -> ignore (Rules_engine.infer ~kb:hep_kb hep_query)));
      Test.make ~name:"maxent-solve-penguin"
        (Staged.stage (fun () ->
             ignore
               (Rw_unary.Solver.solve
                  (Rw_unary.Analysis.analyze penguin_kb)
                  (Tolerance.uniform 0.01))));
      Test.make ~name:"maxent-estimate-penguin"
        (Staged.stage (fun () ->
             ignore (Maxent_engine.estimate ~kb:penguin_kb penguin_query)));
      Test.make ~name:"profile-prn-N20"
        (Staged.stage (fun () ->
             ignore (Rw_unary.Profile.pr_n parts ~query:hep_query ~n:20 ~tol)));
      Test.make ~name:"enum-prn-N4"
        (Staged.stage (fun () ->
             ignore (Enum_engine.pr_n ~vocab ~n:4 ~tol ~kb:hep_kb hep_query)));
      Test.make ~name:"mc-prn-N50-2k-samples"
        (Staged.stage
           (let cfg =
              {
                Rw_mc.Estimator.default_config with
                Rw_mc.Estimator.max_samples = 2_000;
                min_hits = 10;
              }
            in
            fun () ->
              ignore
                (Mc_engine.pr_n ~config:cfg ~vocab ~n:50 ~tol ~kb:hep_kb
                   hep_query)));
      Test.make ~name:"dempster-combine"
        (Staged.stage (fun () -> ignore (Dempster.combine [ 0.8; 0.7; 0.9 ])));
      Test.make ~name:"dispatcher-E01"
        (Staged.stage (fun () ->
             ignore (Engine.degree_of_belief ~kb:hep_kb hep_query)));
    ]

let run_perf () =
  section "Performance — Bechamel micro-benchmarks (monotonic clock)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (perf_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* Print one row per test: nanoseconds per run. *)
  let clock = Hashtbl.find results (Toolkit.Instance.monotonic_clock |> Measure.label) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  Fmt.pr "%-40s %16s@." "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
        let pretty =
          if est > 1e9 then Fmt.str "%.3f s" (est /. 1e9)
          else if est > 1e6 then Fmt.str "%.3f ms" (est /. 1e6)
          else if est > 1e3 then Fmt.str "%.3f µs" (est /. 1e3)
          else Fmt.str "%.0f ns" est
        in
        Fmt.pr "%-40s %16s@." name pretty
      | _ -> Fmt.pr "%-40s %16s@." name "—")
    (List.sort Stdlib.compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let no_perf = Array.exists (fun a -> a = "--no-perf") Sys.argv in
  (* Iterating on one table? --only-explain runs just Table 12. *)
  if Array.exists (fun a -> a = "--only-explain") Sys.argv then (
    table_explain ();
    Fmt.pr "@.done.@.";
    exit 0);
  if Array.exists (fun a -> a = "--only-store") Sys.argv then (
    table_store ();
    Fmt.pr "@.done.@.";
    exit 0);
  if Array.exists (fun a -> a = "--only-compile") Sys.argv then (
    table_compile ();
    Fmt.pr "@.done.@.";
    exit 0);
  if Array.exists (fun a -> a = "--only-session") Sys.argv then (
    table_session ();
    Fmt.pr "@.done.@.";
    exit 0);
  table_zoo ();
  table_dempster ();
  figure_convergence ();
  table_baselines ();
  table_priorities ();
  table_representation ();
  table_lottery ();
  table_limits_of_method ();
  table_learning ();
  table_mc ();
  table_service ();
  table_parallel ();
  table_explain ();
  table_store ();
  table_compile ();
  table_session ();
  figure_scaling ();
  if not no_perf then run_perf ();
  Fmt.pr "@.done.@."
